//! Self-observability primitives: a lock-cheap metrics registry and a
//! tiny leveled structured logger.
//!
//! The engine and the server instrument their hot paths through this
//! module so the system the ASAP paper's dashboards sit on can be
//! watched with its own machinery. Three consumers share one
//! [`Registry::snapshot`]:
//!
//! * the server's `STATS` verb (stable `key value` lines),
//! * the server's `METRICS` verb ([`render_prometheus`] text
//!   exposition),
//! * the background *self-scrape* ([`render_line_protocol`]), which
//!   writes the snapshot back into the store as [`SELF_TAG`]-tagged
//!   series through the normal ingest path — WAL, checkpoints, and
//!   subscriptions all apply, so `SMOOTH`/`SUBSCRIBE` work on the
//!   server's own telemetry.
//!
//! # Design constraints
//!
//! * **Lock-cheap hot path.** Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are `Arc`-backed atomics; recording is a handful of
//!   relaxed atomic ops and never allocates. The registry's map is only
//!   locked at registration and snapshot time.
//! * **No per-sample allocation.** [`Histogram`] is a fixed array of
//!   power-of-two buckets; p50/p90/p99/max are derived from the bucket
//!   counts at snapshot time, never from stored samples.
//! * **Registry per server, not global.** Tests run many servers in one
//!   process; a process-global registry would cross-contaminate their
//!   counters. Only the log level is global (stderr is too).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Tag key marking the server's self-scraped metric series, excluded
/// from wildcard `RANGE`/`SMOOTH`/`SUBSCRIBE` selectors unless the
/// selector takes a position on it (mirroring
/// [`crate::retention::ROLLUP_TAG`]).
pub const SELF_TAG: &str = "__self__";

// ---------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------

/// A monotonically increasing `u64` counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `u64` gauge. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Number of power-of-two buckets. Bucket `i` counts values whose
/// `floor(log2(v))` is `i` (bucket 0 additionally takes `v = 0`), so
/// the range spans `[0, 2^31)` exactly and the last bucket absorbs
/// everything above — 2^31 µs ≈ 36 minutes, far past any latency this
/// system records.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log-bucketed latency histogram: fixed power-of-two buckets,
/// recorded with three relaxed atomic adds and one atomic max, no
/// per-sample allocation. Values are dimensionless `u64`s; by
/// convention every histogram in this workspace records microseconds
/// and carries a `_micros` name suffix.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

#[derive(Debug, Default)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// The bucket a value lands in: `floor(log2(v))`, clamped to the last
/// bucket; 0 and 1 share bucket 0. Public so tests derive boundary
/// expectations from the same math instead of golden values.
pub fn bucket_index(value: u64) -> usize {
    match value.checked_ilog2() {
        None => 0,
        Some(b) => (b as usize).min(HISTOGRAM_BUCKETS - 1),
    }
}

/// The largest value bucket `i` holds (inclusive): `2^(i+1) - 1`, with
/// the last bucket unbounded.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

impl Histogram {
    /// Records one value.
    pub fn observe(&self, value: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the cells. Buckets, count, and sum are
    /// read without a lock, so a snapshot racing live observers may be
    /// off by the in-flight samples — fine for telemetry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = &*self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed)),
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            max: cells.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s cells, with quantiles derived
/// from the bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The upper bound (inclusive) of the first bucket at or past the
    /// `q`-quantile of the recorded samples, or 0 when empty. `q` is
    /// clamped to `[0, 1]`. The true sample lies somewhere inside that
    /// bucket, so the estimate errs high by at most one bucket width —
    /// the standard log-bucket trade for O(1) memory.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count), in integer space, with a floor of 1 sample.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                // The max is a tighter bound than the last occupied
                // bucket's upper edge.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Cloning shares the collection; handle
/// lookup (`counter`/`gauge`/`histogram`) takes the map lock, so
/// resolve handles once at startup and record through them on hot
/// paths.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<std::collections::BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind — metric
    /// names are a per-process contract, so a kind clash is a bug.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use (panics on a kind
    /// clash, as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use (panics on a
    /// kind clash, as [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} is not a histogram"),
        }
    }

    /// A point-in-time sample of every registered metric, sorted by
    /// name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        map.iter()
            .map(|(name, metric)| MetricSample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

/// One sampled metric: a name (dot-separated, STATS-style) and its
/// value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Dot-separated metric name (e.g. `ingest.points`).
    pub name: String,
    /// The sampled value.
    pub value: MetricValue,
}

impl MetricSample {
    /// A counter sample (convenience for snapshot assembly).
    pub fn counter(name: impl Into<String>, value: u64) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge sample.
    pub fn gauge(name: impl Into<String>, value: u64) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A text sample (STATS-only; skipped by the numeric renderers).
    pub fn text(name: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            value: MetricValue::Text(value.into()),
        }
    }
}

/// A sampled metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(u64),
    /// Latency distribution. Boxed: the 32-bucket snapshot dwarfs the
    /// scalar variants, and samples travel in `Vec<MetricSample>`s
    /// dominated by counters/gauges.
    Histogram(Box<HistogramSnapshot>),
    /// Non-numeric value (e.g. `none` for an absent watermark). Only
    /// the STATS renderer emits these.
    Text(String),
}

/// Translates a dot-separated sample name to a Prometheus/line-protocol
/// identifier: `asap_` prefix, dots to underscores
/// (`ingest.points` → `asap_ingest_points`).
pub fn exposition_name(name: &str) -> String {
    format!("asap_{}", name.replace('.', "_"))
}

/// Renders samples as Prometheus text exposition (one `# TYPE` comment
/// per metric; histograms as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`). Text samples are skipped — the exposition
/// format is numeric.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for sample in samples {
        let name = exposition_name(&sample.name);
        match &sample.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cumulative += n;
                    // Skip interior zero-delta buckets to keep the
                    // exposition compact; cumulative counts stay exact.
                    if n == 0 && i + 1 < HISTOGRAM_BUCKETS {
                        continue;
                    }
                    let le = bucket_upper_bound(i);
                    if le == u64::MAX {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    } else {
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
            MetricValue::Text(_) => {}
        }
    }
    out
}

/// Renders samples as line protocol for the self-scrape, one line per
/// metric, every line tagged `{tag}=1` and timestamped `ts`:
///
/// ```text
/// asap_ingest_points,__self__=1 value=123 17000
/// asap_wal_append_micros,__self__=1 count=9,sum=41,p50=3,p90=7,p99=7,max=6 17000
/// ```
///
/// Counters and gauges become the `value` field (series
/// `asap_ingest_points.value{__self__=1}`); histograms export their
/// derived stats as fields. Text samples are skipped.
pub fn render_line_protocol(samples: &[MetricSample], tag: &str, ts: i64) -> String {
    let mut out = String::new();
    for sample in samples {
        let name = exposition_name(&sample.name);
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                out.push_str(&format!("{name},{tag}=1 value={v} {ts}\n"));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{name},{tag}=1 count={},sum={},p50={},p90={},p99={},max={} {ts}\n",
                    h.count,
                    h.sum,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max,
                ));
            }
            MetricValue::Text(_) => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// Instrumentation bundles consumed by engine hot paths
// ---------------------------------------------------------------------

/// Pre-resolved histogram handles for the ingest pipeline's stages,
/// carried by [`crate::IngestConfig`]. All timings are per *batch*
/// (one chunk of lines / one write batch), not per point, so the hot
/// path pays a few atomic adds per thousand points.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    /// Chunk-assembly time in the feeder (`ingest.assemble_micros`).
    pub assemble: Histogram,
    /// Per-chunk parse time in the parser workers
    /// (`ingest.parse_micros`).
    pub parse: Histogram,
    /// Per-batch reorder-stage time in the shard writers
    /// (`ingest.reorder_micros`).
    pub reorder: Histogram,
    /// Per-batch store-apply time in the shard writers
    /// (`ingest.apply_micros`).
    pub apply: Histogram,
}

impl IngestMetrics {
    /// Resolves the stage histograms in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            assemble: registry.histogram("ingest.assemble_micros"),
            parse: registry.histogram("ingest.parse_micros"),
            reorder: registry.histogram("ingest.reorder_micros"),
            apply: registry.histogram("ingest.apply_micros"),
        }
    }
}

/// Pre-resolved handles for the WAL's append path, installed with
/// [`crate::Wal::set_metrics`].
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Per-record append (encode + write) time (`wal.append_micros`).
    pub append: Histogram,
    /// Per-call fsync time (`wal.fsync_micros`).
    pub fsync: Histogram,
}

impl WalMetrics {
    /// Resolves the WAL histograms in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            append: registry.histogram("wal.append_micros"),
            fsync: registry.histogram("wal.fsync_micros"),
        }
    }
}

// ---------------------------------------------------------------------
// Structured logger
// ---------------------------------------------------------------------

/// Log severity, ordered most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The operation failed and was not retried.
    Error = 0,
    /// Something degraded but the system carries on.
    Warn = 1,
    /// Lifecycle events worth one line each.
    Info = 2,
    /// Per-connection noise.
    Debug = 3,
}

impl LogLevel {
    fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;

    /// Parses `error`, `warn`, `info`, or `debug`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error, warn, info, or debug)"
            )),
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide maximum level actually emitted. Stderr is shared by
/// every server in the process, so unlike the registry this is global.
/// Default: `info`.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-wide log level.
pub fn set_log_level(level: LogLevel) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether `level` currently passes the filter — check before building
/// expensive field values.
pub fn log_enabled(level: LogLevel) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emits one structured `key=value` line to stderr:
///
/// ```text
/// level=warn component=server event=compaction_failed error="disk full"
/// ```
///
/// Values render through [`fmt::Display`]; any value containing
/// whitespace, `"`, or `=` is double-quoted with interior quotes
/// flattened to `'` so the line stays one-token-per-field parseable.
pub fn log(level: LogLevel, component: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    if !log_enabled(level) {
        return;
    }
    let mut line = format!("level={} component={component} event={event}", level.name());
    for (key, value) in fields {
        let rendered = value.to_string();
        if rendered.contains(|c: char| c.is_whitespace() || c == '"' || c == '=') {
            line.push_str(&format!(" {key}=\"{}\"", rendered.replace('"', "'")));
        } else {
            line.push_str(&format!(" {key}={rendered}"));
        }
    }
    eprintln!("{line}");
}

/// [`log`] at [`LogLevel::Error`].
pub fn error(component: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(LogLevel::Error, component, event, fields);
}

/// [`log`] at [`LogLevel::Warn`].
pub fn warn(component: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(LogLevel::Warn, component, event, fields);
}

/// [`log`] at [`LogLevel::Info`].
pub fn info(component: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(LogLevel::Info, component, event, fields);
}

/// [`log`] at [`LogLevel::Debug`].
pub fn debug(component: &str, event: &str, fields: &[(&str, &dyn fmt::Display)]) {
    log(LogLevel::Debug, component, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_log2_floor() {
        // Derived from the definition, not golden values: for v >= 1
        // the bucket is floor(log2(v)); 0 shares bucket 0.
        assert_eq!(bucket_index(0), 0);
        for exp in 0..(HISTOGRAM_BUCKETS as u32 - 1) {
            let low = 1u64 << exp;
            let high = (1u64 << (exp + 1)) - 1;
            assert_eq!(bucket_index(low), exp as usize, "2^{exp}");
            assert_eq!(bucket_index(high), exp as usize, "2^{}-1", exp + 1);
            // The next power of two starts the next bucket.
            assert_eq!(bucket_index(high + 1), (exp as usize + 1).min(HISTOGRAM_BUCKETS - 1));
        }
        // Everything past the top boundary lands in the last bucket.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 40), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_exclusive_upper_edges() {
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let upper = bucket_upper_bound(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i} is inside it");
            assert_eq!(bucket_index(upper + 1), i + 1, "upper+1 must start bucket {}", i + 1);
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_counts_land_in_derived_buckets() {
        let h = Histogram::default();
        let values = [0u64, 1, 2, 3, 4, 7, 8, 1000, 1 << 35];
        for &v in &values {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        assert_eq!(snap.max, 1 << 35);
        // Expected bucket occupancy derived from bucket_index itself.
        let mut expected = [0u64; HISTOGRAM_BUCKETS];
        for &v in &values {
            expected[bucket_index(v)] += 1;
        }
        assert_eq!(snap.buckets, expected);
    }

    #[test]
    fn quantiles_derive_from_bucket_math() {
        let h = Histogram::default();
        // 100 samples of 3 (bucket 1, upper bound 3) and 1 sample of
        // 1000 (bucket 9, upper bound 1023 — capped by max=1000).
        for _ in 0..100 {
            h.observe(3);
        }
        h.observe(1000);
        let snap = h.snapshot();
        // p50 and p90 sit inside the bucket holding the 3s; the
        // estimate is that bucket's upper bound.
        assert_eq!(snap.quantile(0.50), bucket_upper_bound(bucket_index(3)));
        assert_eq!(snap.quantile(0.90), bucket_upper_bound(bucket_index(3)));
        // p100 reaches the outlier; its bucket bound (1023) is capped
        // by the recorded max.
        assert_eq!(snap.quantile(1.0), 1000);
        // An empty histogram has no quantiles.
        assert_eq!(Histogram::default().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn quantile_estimate_errs_high_by_at_most_one_bucket() {
        // Property over a spread of sample sets: the estimated quantile
        // is >= the true sample quantile, and within its bucket.
        let samples: Vec<u64> = (0..500).map(|i| (i * i) % 7919).collect();
        let h = Histogram::default();
        let mut sorted = samples.clone();
        for &v in &samples {
            h.observe(v);
        }
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = snap.quantile(q);
            assert!(estimate >= truth, "q={q}: estimate {estimate} < truth {truth}");
            assert!(
                estimate <= bucket_upper_bound(bucket_index(truth)),
                "q={q}: estimate {estimate} outside truth's bucket"
            );
        }
    }

    #[test]
    fn registry_interns_handles_by_name() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x").get(), 3, "same name shares one cell");
        registry.gauge("g").set(7);
        registry.histogram("h_micros").observe(5);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["g", "h_micros", "x"], "snapshot is name-sorted");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_panics_on_kind_clash() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn prometheus_rendering_is_valid_exposition() {
        let registry = Registry::new();
        registry.counter("ingest.points").add(12);
        registry.gauge("store.series").set(3);
        let h = registry.histogram("wal.append_micros");
        h.observe(3);
        h.observe(100);
        let text = render_prometheus(&registry.snapshot());
        // Every non-comment line is `name[{labels}] value`; histogram
        // bucket counts are cumulative and end at +Inf == _count.
        let mut inf = None;
        let mut count = None;
        let mut last_cumulative = 0u64;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE asap_"), "{line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("asap_"), "{line}");
            let value: f64 = value.parse().expect("numeric value");
            if name.starts_with("asap_wal_append_micros_bucket") {
                let cumulative = value as u64;
                assert!(cumulative >= last_cumulative, "buckets must be cumulative");
                last_cumulative = cumulative;
                if name.contains("+Inf") {
                    inf = Some(cumulative);
                }
            }
            if name == "asap_wal_append_micros_count" {
                count = Some(value as u64);
            }
        }
        assert_eq!(inf, Some(2));
        assert_eq!(count, Some(2));
        assert!(text.contains("asap_ingest_points 12\n"));
        assert!(text.contains("asap_store_series 3\n"));
    }

    #[test]
    fn line_protocol_rendering_round_trips_through_the_parser() {
        let registry = Registry::new();
        registry.counter("ingest.points").add(42);
        registry.histogram("wal.append_micros").observe(9);
        let samples = registry.snapshot();
        let doc = render_line_protocol(&samples, SELF_TAG, 1234);
        let mut points = Vec::new();
        for line in doc.lines() {
            points.extend(crate::line_protocol::parse(line, 0).expect("scrape line parses"));
        }
        // The counter series carries the exposition name + .value field
        // and the SELF_TAG; its value round-trips exactly.
        let counter = points
            .iter()
            .find(|p| p.key.metric_name() == "asap_ingest_points.value")
            .expect("counter series present");
        assert_eq!(counter.key.tag(SELF_TAG), Some("1"));
        assert_eq!(counter.point.timestamp, 1234);
        assert_eq!(counter.point.value, 42.0);
        // Histograms export derived stats as fields.
        for field in ["count", "sum", "p50", "p90", "p99", "max"] {
            assert!(
                points
                    .iter()
                    .any(|p| p.key.metric_name() == format!("asap_wal_append_micros.{field}")),
                "missing histogram field {field}"
            );
        }
    }

    #[test]
    fn log_level_grammar_and_order() {
        for (text, level) in [
            ("error", LogLevel::Error),
            ("warn", LogLevel::Warn),
            ("info", LogLevel::Info),
            ("debug", LogLevel::Debug),
        ] {
            assert_eq!(text.parse::<LogLevel>().unwrap(), level);
            assert_eq!(level.to_string(), text);
        }
        assert!("verbose".parse::<LogLevel>().is_err());
        assert!(LogLevel::Error < LogLevel::Debug);
    }
}
