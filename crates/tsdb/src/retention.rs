//! Retention policies and continuous-aggregate rollups.
//!
//! Production monitoring TSDBs keep raw telemetry for a short horizon and
//! downsampled rollups for longer ones (the pattern the ASAP paper's §2
//! dashboards sit on: "the last twelve hours" raw, months downsampled).
//! This module implements that tiering for the embedded engine:
//!
//! * a [`RetentionPolicy`] declares the raw TTL and any number of
//!   [`RollupLevel`]s (bucket width, aggregator, own TTL);
//! * a [`Compactor`] applied periodically (with an explicit `now`, so tests
//!   and simulations drive time) materializes completed rollup buckets into
//!   `__rollup__`-tagged series and evicts expired blocks.
//!
//! Rollups are watermarked per `(series, level)`: each run only aggregates
//! buckets that completed since the previous run, so repeated runs never
//! double-count, and raw data is only evicted after it has been rolled up
//! (eviction cutoffs are clamped to the rollup watermark).
//!
//! The compactor is written against the [`RetentionStore`] abstraction
//! (the read side is [`SeriesReader`]), so one implementation drives the
//! single-shard [`Tsdb`], the partitioned [`crate::sharded::ShardedDb`],
//! and an individual [`crate::shard::Shard`] alike. On a sharded store,
//! [`Compactor::run_sharded`] fans the per-series work out across shards
//! on scoped worker threads: each worker rolls up and evicts the base
//! series its shard owns (rollup writes re-route through the sharded
//! front-end, since the `__rollup__`-tagged key may hash elsewhere), and
//! the per-worker watermark updates — disjoint by construction, as every
//! base series lives on exactly one shard — merge back afterwards. The
//! outcome (report and store state) is identical to the serial
//! [`Compactor::run`] on the same data.

use std::collections::HashMap;

use crate::db::Tsdb;
use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::{Aggregator, RangeQuery, SeriesReader};
use crate::shard::Shard;
use crate::sharded::ShardedDb;
use crate::tags::{Selector, SeriesKey};

/// A periodic tick plan for a background compaction driver: a base
/// `interval` displaced by a uniform random `jitter` each tick.
///
/// Fleet-wide schedulers that tick at exactly the same period
/// self-synchronize — every compactor in a deployment fires at once and
/// the stores see correlated load spikes. Jitter decorrelates them: each
/// delay is drawn uniformly from `[interval - jitter, interval + jitter]`.
///
/// The draw takes the RNG **by injection** ([`Schedule::next_delay`]) so
/// callers control determinism: a scheduler thread passes a seeded
/// [`rand::rngs::StdRng`], and tests assert *bounds* on the drawn delays
/// rather than stream-specific values (the workspace's rand shim does not
/// reproduce the real `StdRng` stream — see ROADMAP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Base tick period.
    pub interval: std::time::Duration,
    /// Maximum displacement from `interval`, each side. Zero disables
    /// jitter. Must not exceed `interval` (delays stay positive).
    pub jitter: std::time::Duration,
}

impl Schedule {
    /// A schedule ticking every `interval` with no jitter.
    pub fn every(interval: std::time::Duration) -> Self {
        Self {
            interval,
            jitter: std::time::Duration::ZERO,
        }
    }

    /// Sets the jitter half-width.
    pub fn with_jitter(mut self, jitter: std::time::Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Validates the shape: a positive interval, jitter no larger than
    /// the interval (so drawn delays are never zero-or-negative unless
    /// jitter == interval, where the minimum delay is exactly zero).
    pub fn validate(&self) -> Result<(), TsdbError> {
        if self.interval.is_zero() {
            return Err(TsdbError::InvalidParameter {
                name: "interval",
                message: "schedule interval must be positive",
            });
        }
        if self.jitter > self.interval {
            return Err(TsdbError::InvalidParameter {
                name: "jitter",
                message: "schedule jitter must not exceed the interval",
            });
        }
        Ok(())
    }

    /// Draws the delay until the next tick: uniform in
    /// `[interval - jitter, interval + jitter]`, inclusive on both ends.
    /// Deterministic for a given RNG state; a zero-jitter schedule
    /// returns exactly `interval` without consuming randomness.
    pub fn next_delay<R: rand::RngCore>(&self, rng: &mut R) -> std::time::Duration {
        use rand::Rng as _;
        if self.jitter.is_zero() {
            return self.interval;
        }
        let base = self.interval.as_nanos() as u64;
        let jitter = self.jitter.as_nanos() as u64;
        let lo = base.saturating_sub(jitter);
        let hi = base.saturating_add(jitter);
        std::time::Duration::from_nanos(rng.gen_range(lo..=hi))
    }
}

/// The store surface retention drives: read series (via [`SeriesReader`]),
/// append rollup batches, and evict expired blocks.
///
/// Implemented by [`Tsdb`], [`ShardedDb`], and [`Shard`], so the
/// compactor runs identically over any front-end.
pub trait RetentionStore: SeriesReader {
    /// Writes an ordered batch of points to one series, creating it on
    /// first touch.
    fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError>;

    /// Evicts sealed blocks older than `cutoff` from one series, dropping
    /// it if left empty. Returns evicted points; missing series evict
    /// nothing.
    fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize;
}

/// Tag key marking materialized rollup series.
pub const ROLLUP_TAG: &str = "__rollup__";

/// One downsampling tier.
#[derive(Debug, Clone, Copy)]
pub struct RollupLevel {
    /// Bucket width in timestamp units.
    pub bucket: i64,
    /// Reduction applied per bucket.
    pub aggregator: Aggregator,
    /// How long rollup points are kept (`None` = forever).
    pub ttl: Option<i64>,
}

/// Raw-data TTL plus the rollup tiers.
#[derive(Debug, Clone, Default)]
pub struct RetentionPolicy {
    /// How long raw points are kept (`None` = forever).
    pub raw_ttl: Option<i64>,
    /// Downsampling tiers (coarser tiers should have longer TTLs).
    pub rollups: Vec<RollupLevel>,
}

impl RetentionPolicy {
    /// Validates tier shapes.
    pub fn validate(&self) -> Result<(), TsdbError> {
        for level in &self.rollups {
            if level.bucket <= 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "bucket",
                    message: "rollup bucket width must be positive",
                });
            }
        }
        if let Some(ttl) = self.raw_ttl {
            if ttl <= 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "raw_ttl",
                    message: "raw TTL must be positive",
                });
            }
        }
        Ok(())
    }
}

/// Returns the key of the rollup series materialized for `base` at `bucket`.
pub fn rollup_key(base: &SeriesKey, bucket: i64) -> SeriesKey {
    base.clone().with_tag(ROLLUP_TAG, bucket.to_string())
}

/// Outcome of one [`Compactor::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Rollup points materialized.
    pub rolled_up: usize,
    /// Raw points evicted.
    pub raw_evicted: usize,
    /// Rollup points evicted.
    pub rollup_evicted: usize,
}

/// Periodic retention/rollup driver for one store (any
/// [`RetentionStore`]: single-shard, sharded, or one shard).
#[derive(Debug)]
pub struct Compactor {
    policy: RetentionPolicy,
    /// Per `(base series, bucket)` end of the last materialized bucket.
    watermarks: HashMap<(SeriesKey, i64), i64>,
}

/// Looks up the effective watermark for `(base, bucket)`: worker-local
/// updates from this pass shadow the compactor's persisted map.
fn effective_watermark(
    local: &HashMap<(SeriesKey, i64), i64>,
    persisted: &HashMap<(SeriesKey, i64), i64>,
    base: &SeriesKey,
    bucket: i64,
) -> Option<i64> {
    let wm_key = (base.clone(), bucket);
    local.get(&wm_key).or_else(|| persisted.get(&wm_key)).copied()
}

/// Materializes the completed buckets of one level for one base series,
/// reading the base from `reader` and writing the rollup through
/// `writer` (on a sharded store the rollup key may hash to a different
/// shard, so the write must go through the routing front-end). Returns
/// `Some((points materialized, new watermark))` when the watermark
/// advanced, `None` when there was nothing to do.
fn roll_up_series<R, W>(
    reader: &R,
    writer: &W,
    base: &SeriesKey,
    level: &RollupLevel,
    prev_watermark: Option<i64>,
    now: i64,
) -> Result<Option<(usize, i64)>, TsdbError>
where
    R: SeriesReader + ?Sized,
    W: RetentionStore + ?Sized,
{
    // A bucket [t, t+bucket) is complete when t+bucket <= now.
    let complete_end = now.div_euclid(level.bucket) * level.bucket;
    let start = match prev_watermark {
        Some(wm) => wm,
        // First run: start from the series' oldest point, bucket-aligned.
        None => match reader
            .read_series(base, RangeQuery::raw(i64::MIN + 1, i64::MAX))?
            .first()
        {
            Some(p) => p.timestamp.div_euclid(level.bucket) * level.bucket,
            None => return Ok(None),
        },
    };
    if start >= complete_end {
        return Ok(None);
    }
    let buckets = reader.read_series(
        base,
        RangeQuery::bucketed(start, complete_end, level.bucket).aggregate(level.aggregator),
    )?;
    if !buckets.is_empty() {
        writer.write_batch(&rollup_key(base, level.bucket), &buckets)?;
    }
    Ok(Some((buckets.len(), complete_end)))
}

/// One compaction pass over a set of base series: roll up every level,
/// then evict expired raw blocks (clamped to the slowest rollup
/// watermark) and expired rollup blocks. `raw_store` is where the base
/// series live (a shard, or the whole store); `router` is the front-end
/// that can reach rollup series wherever they hash to. Returns the
/// report and this pass's watermark advances.
#[allow(clippy::type_complexity)]
fn compact_series<R, W>(
    raw_store: &R,
    router: &W,
    base_series: &[SeriesKey],
    policy: &RetentionPolicy,
    persisted: &HashMap<(SeriesKey, i64), i64>,
    now: i64,
) -> Result<(CompactionReport, Vec<((SeriesKey, i64), i64)>), TsdbError>
where
    R: RetentionStore + ?Sized,
    W: RetentionStore + ?Sized,
{
    let mut report = CompactionReport::default();
    let mut advanced: HashMap<(SeriesKey, i64), i64> = HashMap::new();

    // 1. Materialize completed rollup buckets.
    for base in base_series {
        for level in &policy.rollups {
            let prev = effective_watermark(&advanced, persisted, base, level.bucket);
            if let Some((n, wm)) = roll_up_series(raw_store, router, base, level, prev, now)? {
                report.rolled_up += n;
                advanced.insert((base.clone(), level.bucket), wm);
            }
        }
    }

    // 2. Evict expired raw blocks — but never past the slowest rollup
    // watermark, so data is always rolled up before it disappears.
    if let Some(ttl) = policy.raw_ttl {
        let cutoff = now - ttl;
        for base in base_series {
            let safe_cutoff = policy
                .rollups
                .iter()
                .map(|l| {
                    effective_watermark(&advanced, persisted, base, l.bucket).unwrap_or(i64::MIN)
                })
                .min()
                .map_or(cutoff, |wm| cutoff.min(wm));
            report.raw_evicted += raw_store.evict_series_before(base, safe_cutoff);
        }
    }

    // 3. Evict expired rollup points per tier.
    for level in &policy.rollups {
        if let Some(ttl) = level.ttl {
            let cutoff = now - ttl;
            for base in base_series {
                report.rollup_evicted +=
                    router.evict_series_before(&rollup_key(base, level.bucket), cutoff);
            }
        }
    }
    Ok((report, advanced.into_iter().collect()))
}

impl Compactor {
    /// Creates a compactor for `policy`.
    pub fn new(policy: RetentionPolicy) -> Result<Self, TsdbError> {
        policy.validate()?;
        Ok(Self {
            policy,
            watermarks: HashMap::new(),
        })
    }

    /// Runs one serial compaction pass at logical time `now` over any
    /// store front-end.
    pub fn run<S>(&mut self, db: &S, now: i64) -> Result<CompactionReport, TsdbError>
    where
        S: RetentionStore + ?Sized,
    {
        let base_series: Vec<SeriesKey> = db
            .matching_series(&Selector::any())
            .into_iter()
            .filter(|k| k.tag(ROLLUP_TAG).is_none())
            .collect();
        let (report, advanced) =
            compact_series(db, db, &base_series, &self.policy, &self.watermarks, now)?;
        self.watermarks.extend(advanced);
        Ok(report)
    }

    /// Runs one compaction pass at logical time `now` over a sharded
    /// store, fanning out across shards on scoped worker threads — one
    /// worker per shard that owns base series.
    ///
    /// Each worker compacts exactly the base series its shard holds:
    /// rollup reads and raw eviction hit the shard directly, while
    /// rollup writes and rollup eviction route through `db` (the
    /// `__rollup__`-tagged key may hash to a different shard). Because
    /// every base series lives on exactly one shard, workers touch
    /// disjoint watermark entries, and the merged outcome — report and
    /// store state — equals a serial [`Compactor::run`] over the same
    /// data (pinned by `tests/ops_properties.rs`).
    pub fn run_sharded(
        &mut self,
        db: &ShardedDb,
        now: i64,
    ) -> Result<CompactionReport, TsdbError> {
        let policy = &self.policy;
        let persisted = &self.watermarks;
        let mut merged = CompactionReport::default();
        let mut advanced: Vec<((SeriesKey, i64), i64)> = Vec::new();
        crossbeam::thread::scope(|scope| -> Result<(), TsdbError> {
            let mut handles = Vec::new();
            for shard in db.shards() {
                let base_series: Vec<SeriesKey> = shard
                    .list_series(&Selector::any())
                    .into_iter()
                    .filter(|k| k.tag(ROLLUP_TAG).is_none())
                    .collect();
                if base_series.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    compact_series(shard, db, &base_series, policy, persisted, now)
                }));
            }
            for handle in handles {
                let (report, wms) = handle.join().expect("compaction worker panicked")?;
                merged.rolled_up += report.rolled_up;
                merged.raw_evicted += report.raw_evicted;
                merged.rollup_evicted += report.rollup_evicted;
                advanced.extend(wms);
            }
            Ok(())
        })
        .expect("compaction scope failed")?;
        self.watermarks.extend(advanced);
        Ok(merged)
    }
}

impl RetentionStore for Tsdb {
    fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        Tsdb::write_batch(self, key, points)
    }

    fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        Tsdb::evict_series_before(self, key, cutoff)
    }
}

impl RetentionStore for ShardedDb {
    fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        ShardedDb::write_batch(self, key, points)
    }

    fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        ShardedDb::evict_series_before(self, key, cutoff)
    }
}

impl RetentionStore for Shard {
    fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        Shard::write_batch(self, key, points)
    }

    fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        Shard::evict_series_before(self, key, cutoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DataPoint;

    fn fill(db: &Tsdb, key: &SeriesKey, ts: impl Iterator<Item = i64>) {
        for t in ts {
            db.write(key, DataPoint::new(t, t as f64)).unwrap();
        }
    }

    fn policy(raw_ttl: i64, bucket: i64) -> RetentionPolicy {
        RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            rollups: vec![RollupLevel {
                bucket,
                aggregator: Aggregator::Mean,
                ttl: None,
            }],
        }
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(Compactor::new(policy(-1, 10)).is_err());
        assert!(Compactor::new(policy(10, 0)).is_err());
        assert!(Compactor::new(policy(10, 10)).is_ok());
        assert!(Compactor::new(RetentionPolicy::default()).is_ok());
    }

    #[test]
    fn rollup_materializes_only_complete_buckets() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..25);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        let report = c.run(&db, 25).unwrap();
        // Buckets [0,10) and [10,20) complete; [20,30) still open.
        assert_eq!(report.rolled_up, 2);
        let rk = rollup_key(&key, 10);
        let pts = db.query(&rk, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], DataPoint::new(0, 4.5));
        assert_eq!(pts[1], DataPoint::new(10, 14.5));
    }

    #[test]
    fn repeated_runs_are_idempotent_per_bucket() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..25);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        assert_eq!(c.run(&db, 25).unwrap().rolled_up, 2);
        assert_eq!(c.run(&db, 25).unwrap().rolled_up, 0, "no double counting");
        // More data completes the third bucket.
        fill(&db, &key, 25..35);
        assert_eq!(c.run(&db, 35).unwrap().rolled_up, 1);
    }

    #[test]
    fn raw_eviction_waits_for_rollup_watermark() {
        let db = Tsdb::with_config(crate::db::TsdbConfig { block_capacity: 5 });
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..40);
        db.flush().unwrap();
        // Raw TTL 10 at now=40 ⇒ naive cutoff 30, but the first run's
        // watermark also reaches 40, so eviction may proceed to 30.
        let mut c = Compactor::new(policy(10, 10)).unwrap();
        let report = c.run(&db, 40).unwrap();
        assert_eq!(report.rolled_up, 4);
        assert_eq!(report.raw_evicted, 30, "blocks [0..30) evicted");
        // The rollup series retains history beyond the raw horizon.
        let rk = rollup_key(&key, 10);
        let pts = db.query(&rk, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn rollup_ttl_evicts_old_rollups() {
        let db = Tsdb::with_config(crate::db::TsdbConfig { block_capacity: 2 });
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..100);
        let pol = RetentionPolicy {
            raw_ttl: None,
            rollups: vec![RollupLevel {
                bucket: 10,
                aggregator: Aggregator::Mean,
                ttl: Some(30),
            }],
        };
        let mut c = Compactor::new(pol).unwrap();
        c.run(&db, 100).unwrap();
        // Seal the rollup memtable so eviction (block-granular) can bite,
        // then run again at a later logical time.
        db.flush().unwrap();
        let report = c.run(&db, 200).unwrap();
        assert!(report.rollup_evicted > 0, "expired rollup blocks evicted");
    }

    #[test]
    fn rollup_series_are_not_rolled_up_again() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..20);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        c.run(&db, 20).unwrap();
        c.run(&db, 20).unwrap();
        // Exactly two series exist: base + one rollup (no rollup-of-rollup).
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn sharded_run_matches_serial_run() {
        let sharded =
            ShardedDb::with_config(crate::sharded::ShardedConfig::new(4, 5));
        let serial = Tsdb::with_config(crate::db::TsdbConfig { block_capacity: 5 });
        for h in 0..6 {
            let key = SeriesKey::metric("cpu").with_tag("host", format!("h{h}"));
            for t in 0..40 {
                let p = DataPoint::new(t, (t + h) as f64);
                sharded.write(&key, p).unwrap();
                serial.write(&key, p).unwrap();
            }
        }
        sharded.flush().unwrap();
        serial.flush().unwrap();
        let mut cs = Compactor::new(policy(10, 10)).unwrap();
        let mut co = Compactor::new(policy(10, 10)).unwrap();
        for now in [25, 25, 40, 60] {
            assert_eq!(
                cs.run_sharded(&sharded, now).unwrap(),
                co.run(&serial, now).unwrap(),
                "reports diverge at now={now}"
            );
        }
        let q = RangeQuery::raw(i64::MIN + 1, i64::MAX);
        assert_eq!(
            sharded
                .query_selector(&crate::tags::Selector::any(), q)
                .unwrap(),
            serial
                .query_selector(&crate::tags::Selector::any(), q)
                .unwrap(),
            "store contents diverge after compaction"
        );
    }

    #[test]
    fn sharded_repeated_runs_never_double_count() {
        let db = ShardedDb::with_config(crate::sharded::ShardedConfig::new(3, 8));
        for h in 0..5 {
            let key = SeriesKey::metric("cpu").with_tag("host", format!("h{h}"));
            fill_sharded(&db, &key, 0..25);
        }
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        assert_eq!(c.run_sharded(&db, 25).unwrap().rolled_up, 2 * 5);
        assert_eq!(c.run_sharded(&db, 25).unwrap().rolled_up, 0, "no double counting");
        // Serial and sharded passes share watermarks: a serial run right
        // after also materializes nothing.
        assert_eq!(c.run(&db, 25).unwrap().rolled_up, 0);
    }

    #[test]
    fn sharded_raw_eviction_waits_for_rollup_watermark() {
        let db = ShardedDb::with_config(crate::sharded::ShardedConfig::new(4, 5));
        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        fill_sharded(&db, &key, 0..40);
        db.flush().unwrap();
        let mut c = Compactor::new(policy(10, 10)).unwrap();
        let report = c.run_sharded(&db, 40).unwrap();
        assert_eq!(report.rolled_up, 4);
        assert_eq!(report.raw_evicted, 30, "blocks [0..30) evicted");
        let rk = rollup_key(&key, 10);
        let pts = db.query(&rk, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
        assert_eq!(pts.len(), 4, "rollup history survives raw eviction");
    }

    fn fill_sharded(db: &ShardedDb, key: &SeriesKey, ts: impl Iterator<Item = i64>) {
        for t in ts {
            db.write(key, DataPoint::new(t, t as f64)).unwrap();
        }
    }

    #[test]
    fn schedule_validates_shape() {
        use std::time::Duration;
        assert!(Schedule::every(Duration::ZERO).validate().is_err());
        assert!(Schedule::every(Duration::from_secs(10))
            .with_jitter(Duration::from_secs(11))
            .validate()
            .is_err());
        assert!(Schedule::every(Duration::from_secs(10))
            .with_jitter(Duration::from_secs(10))
            .validate()
            .is_ok());
        assert!(Schedule::every(Duration::from_secs(10)).validate().is_ok());
    }

    #[test]
    fn schedule_without_jitter_ticks_exactly_at_interval() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::time::Duration;
        let schedule = Schedule::every(Duration::from_millis(250));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(schedule.next_delay(&mut rng), Duration::from_millis(250));
        }
    }

    #[test]
    fn schedule_jitter_stays_within_bounds_and_spreads() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::time::Duration;
        // Bounds and spread are asserted, never specific drawn values:
        // the rand shim's stream differs from real StdRng (ROADMAP).
        let schedule = Schedule::every(Duration::from_millis(100))
            .with_jitter(Duration::from_millis(40));
        schedule.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let draws: Vec<Duration> = (0..256).map(|_| schedule.next_delay(&mut rng)).collect();
        let lo = Duration::from_millis(60);
        let hi = Duration::from_millis(140);
        for d in &draws {
            assert!(*d >= lo && *d <= hi, "delay {d:?} escaped [{lo:?}, {hi:?}]");
        }
        // The jitter genuinely decorrelates ticks: many distinct delays,
        // both halves of the window hit.
        let distinct: std::collections::BTreeSet<Duration> = draws.iter().copied().collect();
        assert!(distinct.len() > 100, "only {} distinct delays", distinct.len());
        assert!(draws.iter().any(|d| *d < schedule.interval));
        assert!(draws.iter().any(|d| *d > schedule.interval));
    }

    #[test]
    fn schedule_draws_are_deterministic_for_a_fixed_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::time::Duration;
        let schedule = Schedule::every(Duration::from_millis(100))
            .with_jitter(Duration::from_millis(25));
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        let from_a: Vec<_> = (0..64).map(|_| schedule.next_delay(&mut a)).collect();
        let from_b: Vec<_> = (0..64).map(|_| schedule.next_delay(&mut b)).collect();
        assert_eq!(from_a, from_b, "same seed, same tick plan");
    }

    #[test]
    fn multiple_tiers_materialize_independently() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..100);
        let pol = RetentionPolicy {
            raw_ttl: None,
            rollups: vec![
                RollupLevel {
                    bucket: 10,
                    aggregator: Aggregator::Mean,
                    ttl: None,
                },
                RollupLevel {
                    bucket: 50,
                    aggregator: Aggregator::Max,
                    ttl: None,
                },
            ],
        };
        let mut c = Compactor::new(pol).unwrap();
        let report = c.run(&db, 100).unwrap();
        assert_eq!(report.rolled_up, 10 + 2);
        let fine = db
            .query(&rollup_key(&key, 10), RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .unwrap();
        let coarse = db
            .query(&rollup_key(&key, 50), RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .unwrap();
        assert_eq!(fine.len(), 10);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0].value, 49.0, "max over [0,50)");
        assert_eq!(coarse[1].value, 99.0, "max over [50,100)");
    }
}
