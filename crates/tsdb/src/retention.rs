//! Retention policies and continuous-aggregate rollups.
//!
//! Production monitoring TSDBs keep raw telemetry for a short horizon and
//! downsampled rollups for longer ones (the pattern the ASAP paper's §2
//! dashboards sit on: "the last twelve hours" raw, months downsampled).
//! This module implements that tiering for the embedded engine:
//!
//! * a [`RetentionPolicy`] declares the raw TTL and any number of
//!   [`RollupLevel`]s (bucket width, aggregator, own TTL);
//! * a [`Compactor`] applied periodically (with an explicit `now`, so tests
//!   and simulations drive time) materializes completed rollup buckets into
//!   `__rollup__`-tagged series and evicts expired blocks.
//!
//! Rollups are watermarked per `(series, level)`: each run only aggregates
//! buckets that completed since the previous run, so repeated runs never
//! double-count, and raw data is only evicted after it has been rolled up
//! (eviction cutoffs are clamped to the rollup watermark).

use std::collections::HashMap;

use crate::db::Tsdb;
use crate::error::TsdbError;
use crate::query::{Aggregator, RangeQuery};
use crate::tags::SeriesKey;

/// Tag key marking materialized rollup series.
pub const ROLLUP_TAG: &str = "__rollup__";

/// One downsampling tier.
#[derive(Debug, Clone, Copy)]
pub struct RollupLevel {
    /// Bucket width in timestamp units.
    pub bucket: i64,
    /// Reduction applied per bucket.
    pub aggregator: Aggregator,
    /// How long rollup points are kept (`None` = forever).
    pub ttl: Option<i64>,
}

/// Raw-data TTL plus the rollup tiers.
#[derive(Debug, Clone, Default)]
pub struct RetentionPolicy {
    /// How long raw points are kept (`None` = forever).
    pub raw_ttl: Option<i64>,
    /// Downsampling tiers (coarser tiers should have longer TTLs).
    pub rollups: Vec<RollupLevel>,
}

impl RetentionPolicy {
    /// Validates tier shapes.
    pub fn validate(&self) -> Result<(), TsdbError> {
        for level in &self.rollups {
            if level.bucket <= 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "bucket",
                    message: "rollup bucket width must be positive",
                });
            }
        }
        if let Some(ttl) = self.raw_ttl {
            if ttl <= 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "raw_ttl",
                    message: "raw TTL must be positive",
                });
            }
        }
        Ok(())
    }
}

/// Returns the key of the rollup series materialized for `base` at `bucket`.
pub fn rollup_key(base: &SeriesKey, bucket: i64) -> SeriesKey {
    base.clone().with_tag(ROLLUP_TAG, bucket.to_string())
}

/// Outcome of one [`Compactor::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Rollup points materialized.
    pub rolled_up: usize,
    /// Raw points evicted.
    pub raw_evicted: usize,
    /// Rollup points evicted.
    pub rollup_evicted: usize,
}

/// Periodic retention/rollup driver for one [`Tsdb`].
#[derive(Debug)]
pub struct Compactor {
    policy: RetentionPolicy,
    /// Per `(base series, bucket)` end of the last materialized bucket.
    watermarks: HashMap<(SeriesKey, i64), i64>,
}

impl Compactor {
    /// Creates a compactor for `policy`.
    pub fn new(policy: RetentionPolicy) -> Result<Self, TsdbError> {
        policy.validate()?;
        Ok(Self {
            policy,
            watermarks: HashMap::new(),
        })
    }

    /// Runs one compaction pass at logical time `now`.
    pub fn run(&mut self, db: &Tsdb, now: i64) -> Result<CompactionReport, TsdbError> {
        let mut report = CompactionReport::default();
        let base_series: Vec<SeriesKey> = db
            .list_series(&crate::tags::Selector::any())
            .into_iter()
            .filter(|k| k.tag(ROLLUP_TAG).is_none())
            .collect();

        // 1. Materialize completed rollup buckets.
        let levels = self.policy.rollups.clone();
        for base in &base_series {
            for level in &levels {
                report.rolled_up += self.roll_up(db, base, level, now)?;
            }
        }

        // 2. Evict expired raw blocks — but never past the slowest rollup
        // watermark, so data is always rolled up before it disappears.
        if let Some(ttl) = self.policy.raw_ttl {
            let cutoff = now - ttl;
            for base in &base_series {
                let safe_cutoff = self
                    .policy
                    .rollups
                    .iter()
                    .map(|l| {
                        self.watermarks
                            .get(&(base.clone(), l.bucket))
                            .copied()
                            .unwrap_or(i64::MIN)
                    })
                    .min()
                    .map_or(cutoff, |wm| cutoff.min(wm));
                report.raw_evicted += db.evict_series_before(base, safe_cutoff);
            }
        }

        // 3. Evict expired rollup points per tier.
        for level in &self.policy.rollups {
            if let Some(ttl) = level.ttl {
                let cutoff = now - ttl;
                for base in &base_series {
                    report.rollup_evicted +=
                        db.evict_series_before(&rollup_key(base, level.bucket), cutoff);
                }
            }
        }
        Ok(report)
    }

    /// Materializes the completed buckets of one level for one series.
    fn roll_up(
        &mut self,
        db: &Tsdb,
        base: &SeriesKey,
        level: &RollupLevel,
        now: i64,
    ) -> Result<usize, TsdbError> {
        // A bucket [t, t+bucket) is complete when t+bucket <= now.
        let complete_end = now.div_euclid(level.bucket) * level.bucket;
        let wm_key = (base.clone(), level.bucket);
        let start = self.watermarks.get(&wm_key).copied().unwrap_or(i64::MIN);
        // First run: start from the series' oldest point, bucket-aligned.
        let start = if start == i64::MIN {
            match db.query(base, RangeQuery::raw(i64::MIN + 1, i64::MAX))?.first() {
                Some(p) => p.timestamp.div_euclid(level.bucket) * level.bucket,
                None => return Ok(0),
            }
        } else {
            start
        };
        if start >= complete_end {
            return Ok(0);
        }
        let buckets = db.query(
            base,
            RangeQuery::bucketed(start, complete_end, level.bucket).aggregate(level.aggregator),
        )?;
        let target = rollup_key(base, level.bucket);
        db.write_batch(&target, &buckets)?;
        self.watermarks.insert(wm_key, complete_end);
        Ok(buckets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DataPoint;

    fn fill(db: &Tsdb, key: &SeriesKey, ts: impl Iterator<Item = i64>) {
        for t in ts {
            db.write(key, DataPoint::new(t, t as f64)).unwrap();
        }
    }

    fn policy(raw_ttl: i64, bucket: i64) -> RetentionPolicy {
        RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            rollups: vec![RollupLevel {
                bucket,
                aggregator: Aggregator::Mean,
                ttl: None,
            }],
        }
    }

    #[test]
    fn invalid_policies_rejected() {
        assert!(Compactor::new(policy(-1, 10)).is_err());
        assert!(Compactor::new(policy(10, 0)).is_err());
        assert!(Compactor::new(policy(10, 10)).is_ok());
        assert!(Compactor::new(RetentionPolicy::default()).is_ok());
    }

    #[test]
    fn rollup_materializes_only_complete_buckets() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..25);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        let report = c.run(&db, 25).unwrap();
        // Buckets [0,10) and [10,20) complete; [20,30) still open.
        assert_eq!(report.rolled_up, 2);
        let rk = rollup_key(&key, 10);
        let pts = db.query(&rk, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], DataPoint::new(0, 4.5));
        assert_eq!(pts[1], DataPoint::new(10, 14.5));
    }

    #[test]
    fn repeated_runs_are_idempotent_per_bucket() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..25);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        assert_eq!(c.run(&db, 25).unwrap().rolled_up, 2);
        assert_eq!(c.run(&db, 25).unwrap().rolled_up, 0, "no double counting");
        // More data completes the third bucket.
        fill(&db, &key, 25..35);
        assert_eq!(c.run(&db, 35).unwrap().rolled_up, 1);
    }

    #[test]
    fn raw_eviction_waits_for_rollup_watermark() {
        let db = Tsdb::with_config(crate::db::TsdbConfig { block_capacity: 5 });
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..40);
        db.flush().unwrap();
        // Raw TTL 10 at now=40 ⇒ naive cutoff 30, but the first run's
        // watermark also reaches 40, so eviction may proceed to 30.
        let mut c = Compactor::new(policy(10, 10)).unwrap();
        let report = c.run(&db, 40).unwrap();
        assert_eq!(report.rolled_up, 4);
        assert_eq!(report.raw_evicted, 30, "blocks [0..30) evicted");
        // The rollup series retains history beyond the raw horizon.
        let rk = rollup_key(&key, 10);
        let pts = db.query(&rk, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
        assert_eq!(pts.len(), 4);
    }

    #[test]
    fn rollup_ttl_evicts_old_rollups() {
        let db = Tsdb::with_config(crate::db::TsdbConfig { block_capacity: 2 });
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..100);
        let pol = RetentionPolicy {
            raw_ttl: None,
            rollups: vec![RollupLevel {
                bucket: 10,
                aggregator: Aggregator::Mean,
                ttl: Some(30),
            }],
        };
        let mut c = Compactor::new(pol).unwrap();
        c.run(&db, 100).unwrap();
        // Seal the rollup memtable so eviction (block-granular) can bite,
        // then run again at a later logical time.
        db.flush().unwrap();
        let report = c.run(&db, 200).unwrap();
        assert!(report.rollup_evicted > 0, "expired rollup blocks evicted");
    }

    #[test]
    fn rollup_series_are_not_rolled_up_again() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..20);
        let mut c = Compactor::new(policy(1_000_000, 10)).unwrap();
        c.run(&db, 20).unwrap();
        c.run(&db, 20).unwrap();
        // Exactly two series exist: base + one rollup (no rollup-of-rollup).
        assert_eq!(db.series_count(), 2);
    }

    #[test]
    fn multiple_tiers_materialize_independently() {
        let db = Tsdb::new();
        let key = SeriesKey::metric("cpu");
        fill(&db, &key, 0..100);
        let pol = RetentionPolicy {
            raw_ttl: None,
            rollups: vec![
                RollupLevel {
                    bucket: 10,
                    aggregator: Aggregator::Mean,
                    ttl: None,
                },
                RollupLevel {
                    bucket: 50,
                    aggregator: Aggregator::Max,
                    ttl: None,
                },
            ],
        };
        let mut c = Compactor::new(pol).unwrap();
        let report = c.run(&db, 100).unwrap();
        assert_eq!(report.rolled_up, 10 + 2);
        let fine = db
            .query(&rollup_key(&key, 10), RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .unwrap();
        let coarse = db
            .query(&rollup_key(&key, 50), RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .unwrap();
        assert_eq!(fine.len(), 10);
        assert_eq!(coarse.len(), 2);
        assert_eq!(coarse[0].value, 49.0, "max over [0,50)");
        assert_eq!(coarse[1].value, 99.0, "max over [50,100)");
    }
}
