//! Bit-granular writer and reader over byte buffers.
//!
//! The Gorilla compressor ([`crate::gorilla`]) emits variable-width records
//! (1-bit controls, 7/9/12-bit deltas, arbitrary-width XOR windows). This
//! module provides the minimal substrate: append bits to a growable buffer,
//! and read them back sequentially. Bits are packed MSB-first within each
//! byte, matching the order used by the Gorilla paper's reference layout.

use bytes::{BufMut, Bytes, BytesMut};

use crate::error::TsdbError;

/// Append-only bit stream backed by a [`BytesMut`].
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Free bits remaining in the final byte of `buf` (0 means byte-aligned,
    /// so the next write starts a fresh byte).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with room for `bytes` bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(bytes),
            used: 0,
        }
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            // `used` counts free bits remaining in the final byte.
            (self.buf.len() - 1) * 8 + (8 - usize::from(self.used))
        }
    }

    /// True when no bits have been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits() == 0
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.buf.put_u8(0);
            self.used = 8;
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (self.used - 1);
        }
        self.used -= 1;
        // `used` now counts remaining free bits; normalize so that 0 free
        // bits reads as byte-aligned for the next call.
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn write_bits(&mut self, value: u64, width: u8) {
        assert!(width <= 64, "bit width {width} exceeds u64");
        for i in (0..width).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finalizes the stream, returning the packed bytes and the total bit
    /// count (the final byte may carry up to 7 bits of zero padding).
    pub fn finish(self) -> (Bytes, usize) {
        let bits = self.len_bits();
        (self.buf.freeze(), bits)
    }
}

/// Sequential reader over a bit stream produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next bit to read, counted from the start of `data`.
    pos: usize,
    /// Total number of valid bits in `data`.
    len: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data` containing `len_bits` valid bits.
    ///
    /// A `len_bits` beyond the buffer is clamped: a truncated payload then
    /// surfaces as [`TsdbError::CorruptBlock`] at the read that runs out.
    pub fn new(data: &'a [u8], len_bits: usize) -> Self {
        Self {
            data,
            pos: 0,
            len: len_bits.min(data.len() * 8),
        }
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Reads a single bit, failing if the stream is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, TsdbError> {
        if self.pos >= self.len {
            return Err(TsdbError::CorruptBlock {
                reason: "bit stream exhausted mid-record",
            });
        }
        let byte = self.data[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits into the low bits of a `u64`, MSB first.
    pub fn read_bits(&mut self, width: u8) -> Result<u64, TsdbError> {
        assert!(width <= 64, "bit width {width} exceeds u64");
        if self.remaining() < usize::from(width) {
            return Err(TsdbError::CorruptBlock {
                reason: "bit stream exhausted mid-record",
            });
        }
        let mut out = 0u64;
        for _ in 0..width {
            out = (out << 1) | u64::from(self.read_bit()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        assert!(r.read_bit().is_err(), "reading past the end must error");
    }

    #[test]
    fn multi_bit_fields_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        w.write_bits(0x1234_5678_9abc_def0, 64);
        w.write_bits(0x3f, 6);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), 0x1234_5678_9abc_def0);
        assert_eq!(r.read_bits(6).unwrap(), 0x3f);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zero_width_read_is_empty() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
    }

    #[test]
    fn len_bits_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        for i in 0..17 {
            w.write_bit(i % 2 == 0);
            assert_eq!(w.len_bits(), i + 1);
        }
    }

    #[test]
    fn reader_bounded_by_declared_bits_not_buffer() {
        // Final byte carries padding; the declared bit length must gate reads.
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let (bytes, bits) = w.finish();
        assert_eq!(bytes.len(), 1);
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn exhaustive_two_byte_patterns() {
        // Round-trip every 16-bit value as one field and as 16 single bits.
        for v in (0..=u16::MAX).step_by(257) {
            let mut w = BitWriter::new();
            w.write_bits(u64::from(v), 16);
            let (bytes, bits) = w.finish();
            let mut r = BitReader::new(&bytes, bits);
            assert_eq!(r.read_bits(16).unwrap(), u64::from(v));
        }
    }
}
