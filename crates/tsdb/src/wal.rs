//! Per-shard append-only write-ahead log for crash durability.
//!
//! The engine is in-memory; snapshots ([`crate::persist`]) are whole-store
//! copies taken at operator-chosen instants. This module closes the gap
//! between snapshots: every point the ingest pipeline *applies* (i.e. the
//! post-reorder stream that survived watermark drops and duplicate
//! filtering) is appended to a per-shard log file before the write is
//! acknowledged, so a crash loses at most the records behind the
//! configured [`FsyncPolicy`], never the whole store.
//!
//! # Record format
//!
//! Records are length-prefixed and CRC-checked, little-endian throughout:
//!
//! ```text
//! +----------------+----------------+---------------------------------+
//! | u32 payload_len| u32 crc32(pay) | payload                         |
//! +----------------+----------------+---------------------------------+
//! payload = u32 key_len | key display bytes ("metric{k=v,...}")
//!         | i64 timestamp | u64 value bits (f64::to_bits)
//! ```
//!
//! A reader accepts the longest clean prefix of a file: the first torn
//! header, torn payload, implausible length, CRC mismatch, or malformed
//! payload ends the scan for that file. Damage is *reported*, never
//! fatal — a torn tail is exactly what a crash mid-append leaves behind,
//! and everything before it is still good.
//!
//! # Generations, rotation, and checkpoints
//!
//! Files are named `wal-<shard>-<generation>.log`. [`Wal::open`] always
//! starts a fresh generation (max existing + 1), so a prior run's torn
//! tail is never appended to. A *checkpoint* is the coordinated sequence
//!
//! 1. [`Wal::rotate`] — every shard moves to generation *G+1*;
//! 2. snapshot save — covers everything in generations ≤ *G*;
//! 3. [`Wal::discard_before`]`(G+1)` — delete the covered generations.
//!
//! A crash between any two steps is safe because [`replay`] is
//! idempotent: records already present in the store (e.g. loaded from the
//! snapshot) are skipped via the engine's strict per-series timestamp
//! ordering. [`crate::persist::checkpoint_sharded`] packages the
//! sequence; a snapshot plus the WAL directory's surviving files is
//! therefore always a complete recovery set.
//!
//! # Ordering contract
//!
//! [`Wal::log_applied`] holds the shard's log lock *across* the store
//! write and the append, so the per-series record order in the log always
//! equals store apply order, even when concurrent connections write the
//! same series. Within one generation a series lives in exactly one shard
//! file; [`replay`] applies generations in ascending order, so replayed
//! timestamps are strictly increasing per series and re-routing by the
//! store's own hash (which tolerates restarting with a different shard
//! count) never observes out-of-order input except for snapshot overlap.
//!
//! # What is (and is not) logged
//!
//! The WAL captures ingest writes only. Compaction rollups and retention
//! evictions are derived state: after recovery the compactor re-runs and
//! converges. One documented edge: if the log append itself fails (disk
//! full) *after* the store write succeeded, the point is live in memory
//! but missing from the recovery set; the failure surfaces as a per-line
//! write failure in the ingest report so the source can retry.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::error::TsdbError;
use crate::obs::WalMetrics;
use crate::persist::parse_series_key;
use crate::point::DataPoint;
use crate::sharded::ShardedDb;
use crate::tags::SeriesKey;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) lookup table, built at
/// compile time so the module stays dependency-free.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`. Detects all single-bit flips and all burst
/// errors shorter than 32 bits, which is what the fault-injection wall
/// leans on.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// How often appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: zero loss window, slowest.
    Always,
    /// `fsync` once per `N` appended records (per shard).
    EveryN(u64),
    /// `fsync` when at least this long has passed since the shard's last
    /// sync, checked at append time.
    Interval(Duration),
}

impl Default for FsyncPolicy {
    /// Every 256 records — a pragmatic middle ground.
    fn default() -> Self {
        FsyncPolicy::EveryN(256)
    }
}

impl fmt::Display for FsyncPolicy {
    /// Renders in the same grammar [`FromStr`] accepts:
    /// `always`, `every=N`, `interval-ms=N`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Interval(d) => write!(f, "interval-ms={}", d.as_millis()),
        }
    }
}

impl FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `always`, `every=N` (N ≥ 1), or `interval-ms=N` (N ≥ 1).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "always" {
            return Ok(FsyncPolicy::Always);
        }
        if let Some(n) = s.strip_prefix("every=") {
            let n: u64 = n.parse().map_err(|_| format!("bad record count in {s:?}"))?;
            if n == 0 {
                return Err("every=N requires N >= 1".into());
            }
            return Ok(FsyncPolicy::EveryN(n));
        }
        if let Some(ms) = s.strip_prefix("interval-ms=") {
            let ms: u64 = ms.parse().map_err(|_| format!("bad millisecond count in {s:?}"))?;
            if ms == 0 {
                return Err("interval-ms=N requires N >= 1".into());
            }
            return Ok(FsyncPolicy::Interval(Duration::from_millis(ms)));
        }
        Err(format!(
            "unknown fsync policy {s:?} (expected always, every=N, or interval-ms=N)"
        ))
    }
}

/// Where and how durably to log: pairs a log directory with a
/// [`FsyncPolicy`]. Consumed by the server's configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Directory holding the `wal-<shard>-<generation>.log` files.
    pub dir: PathBuf,
    /// Sync cadence for appended records.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config for `dir` with the default fsync policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
        }
    }
}

/// Fixed record header: `u32` payload length + `u32` payload CRC.
const HEADER_LEN: usize = 8;
/// Plausibility cap on one payload; anything larger is treated as
/// corruption (a real key is far below this).
const MAX_PAYLOAD: u32 = 1 << 20;
const FILE_PREFIX: &str = "wal-";
const FILE_SUFFIX: &str = ".log";

/// Encodes one record (header + payload) ready to append.
pub fn encode_record(key: &SeriesKey, point: DataPoint) -> Vec<u8> {
    let key_text = key.to_string();
    let key_bytes = key_text.as_bytes();
    let mut payload = Vec::with_capacity(4 + key_bytes.len() + 16);
    payload.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    payload.extend_from_slice(key_bytes);
    payload.extend_from_slice(&point.timestamp.to_le_bytes());
    payload.extend_from_slice(&point.value.to_bits().to_le_bytes());
    let mut record = Vec::with_capacity(HEADER_LEN + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Encoded size in bytes of the record for `key` — lets tests compute
/// exact record boundaries from the documented format.
pub fn record_len(key: &SeriesKey) -> usize {
    HEADER_LEN + 4 + key.to_string().len() + 16
}

/// One decoded WAL record: the applied point and the series it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Series the point was applied to.
    pub key: SeriesKey,
    /// The applied point.
    pub point: DataPoint,
}

/// Result of scanning one WAL file: the longest clean record prefix plus
/// a description of trailing damage, if the scan stopped early.
#[derive(Debug, Clone)]
pub struct WalSegment {
    /// Records of the clean prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes consumed by the clean prefix.
    pub clean_bytes: u64,
    /// Why the scan stopped before end-of-file, if it did.
    pub damage: Option<String>,
}

/// Reads the longest clean record prefix of the file at `path`.
///
/// Damage (torn tail, CRC mismatch, garbage) ends the scan and is
/// described in [`WalSegment::damage`]; only failing to read the file at
/// all is an error.
pub fn read_records(path: &Path) -> Result<WalSegment, TsdbError> {
    let bytes = fs::read(path).map_err(io_err)?;
    Ok(scan(&bytes))
}

fn scan(bytes: &[u8]) -> WalSegment {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let damaged = |records: Vec<WalRecord>, pos: usize, reason: &str| WalSegment {
        records,
        clean_bytes: pos as u64,
        damage: Some(format!("{reason} at byte {pos}")),
    };
    loop {
        if pos == bytes.len() {
            return WalSegment {
                records,
                clean_bytes: pos as u64,
                damage: None,
            };
        }
        let Some(header) = bytes.get(pos..pos + HEADER_LEN) else {
            return damaged(records, pos, "torn record header");
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4-byte slice"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return damaged(records, pos, "implausible record length");
        }
        let Some(payload) = bytes.get(pos + HEADER_LEN..pos + HEADER_LEN + len as usize) else {
            return damaged(records, pos, "torn record payload");
        };
        if crc32(payload) != crc {
            return damaged(records, pos, "record CRC mismatch");
        }
        match decode_payload(payload) {
            Some(record) => records.push(record),
            None => return damaged(records, pos, "malformed record payload"),
        }
        pos += HEADER_LEN + len as usize;
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let key_len = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
    if payload.len() != 4 + key_len + 16 {
        return None;
    }
    let key_text = std::str::from_utf8(payload.get(4..4 + key_len)?).ok()?;
    let key = parse_series_key(key_text).ok()?;
    let timestamp = i64::from_le_bytes(payload.get(4 + key_len..12 + key_len)?.try_into().ok()?);
    let value = f64::from_bits(u64::from_le_bytes(
        payload.get(12 + key_len..20 + key_len)?.try_into().ok()?,
    ));
    if !value.is_finite() {
        return None;
    }
    Some(WalRecord {
        key,
        point: DataPoint { timestamp, value },
    })
}

/// One WAL file discovered in a log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFileId {
    /// Full path of the file.
    pub path: PathBuf,
    /// Shard index encoded in the file name.
    pub shard: usize,
    /// Generation encoded in the file name.
    pub generation: u64,
}

fn file_name(shard: usize, generation: u64) -> String {
    format!("{FILE_PREFIX}{shard:04}-{generation:08}{FILE_SUFFIX}")
}

fn parse_file_name(name: &str) -> Option<(usize, u64)> {
    let stem = name.strip_prefix(FILE_PREFIX)?.strip_suffix(FILE_SUFFIX)?;
    let (shard, generation) = stem.split_once('-')?;
    Some((shard.parse().ok()?, generation.parse().ok()?))
}

/// Lists the WAL files in `dir`, sorted by (generation, shard) — the
/// order [`replay`] applies them in. Files whose names don't match
/// `wal-<shard>-<generation>.log` are ignored; a missing directory is an
/// empty list.
pub fn wal_files(dir: &Path) -> Result<Vec<WalFileId>, TsdbError> {
    let mut files = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(io_err(e)),
    };
    for entry in entries {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((shard, generation)) = parse_file_name(name) else {
            continue;
        };
        files.push(WalFileId {
            path: entry.path(),
            shard,
            generation,
        });
    }
    files.sort_by_key(|f| (f.generation, f.shard));
    Ok(files)
}

/// Counters from one [`replay`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalReplayReport {
    /// WAL files scanned.
    pub files: usize,
    /// Records applied to the store.
    pub applied: u64,
    /// Records the store already held (snapshot overlap after a crash
    /// between checkpoint steps) — skipped, by design.
    pub skipped: u64,
    /// Files whose tail was dropped because of a torn write or
    /// corruption. Never fatal.
    pub damaged: usize,
}

/// Replays every WAL file in `dir` into `db`, generations ascending.
///
/// Routing uses the store's own key hash, so a directory written under
/// one shard count replays correctly into a store with another. Records
/// the store already holds (strict per-series ordering rejects them) are
/// counted as skipped; damaged file tails are dropped and counted. The
/// only errors are real I/O failures reading the directory.
pub fn replay(dir: &Path, db: &ShardedDb) -> Result<WalReplayReport, TsdbError> {
    let mut report = WalReplayReport::default();
    for file in wal_files(dir)? {
        let segment = read_records(&file.path)?;
        report.files += 1;
        if segment.damage.is_some() {
            report.damaged += 1;
        }
        for record in segment.records {
            match db.write(&record.key, record.point) {
                Ok(()) => report.applied += 1,
                Err(TsdbError::OutOfOrder { .. }) => report.skipped += 1,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(report)
}

/// Counter snapshot from [`Wal::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub records: u64,
    /// Bytes appended since open.
    pub bytes: u64,
    /// `fsync` calls issued since open.
    pub fsyncs: u64,
    /// Rotations performed since open.
    pub rotations: u64,
    /// Append/fsync failures since open (see [`Wal::last_error`]).
    pub errors: u64,
}

#[derive(Debug)]
struct ShardFile {
    file: File,
    /// Appends since this shard's last fsync.
    unsynced: u64,
    last_sync: Instant,
}

impl ShardFile {
    fn create(dir: &Path, shard: usize, generation: u64) -> Result<Self, TsdbError> {
        let path = dir.join(file_name(shard, generation));
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(Self {
            file,
            unsynced: 0,
            last_sync: Instant::now(),
        })
    }
}

#[derive(Debug)]
struct WalInner {
    dir: PathBuf,
    fsync: FsyncPolicy,
    generation: AtomicU64,
    shards: Vec<Mutex<ShardFile>>,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
    errors: AtomicU64,
    /// Cheap hot-path flag mirroring `last_error.is_some()`, so the
    /// success path pays one relaxed load instead of a mutex.
    has_error: AtomicBool,
    /// Rendering of the most recent append/fsync failure — cleared when
    /// a later append succeeds, matching the schedulers' `last_error`
    /// convention: a populated value means the log is *currently*
    /// failing, not that it once did.
    last_error: Mutex<Option<String>>,
    /// Optional latency instrumentation, installed once by the server.
    metrics: OnceLock<WalMetrics>,
}

/// The live appender: one append-only log file per shard, shared by all
/// writers via cheap clones (an `Arc` inside).
#[derive(Debug, Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl Wal {
    /// Opens (creating if needed) the log directory for `shards` shard
    /// files under the given fsync policy.
    ///
    /// Always starts a fresh generation — one past the highest already in
    /// the directory — so records from a prior run (including any torn
    /// tail) are left untouched for [`replay`] and never appended to.
    ///
    /// Empty files from prior sealed generations are removed first:
    /// every open creates one file per shard, so a restart-looping
    /// server that writes nothing would otherwise accumulate
    /// `wal-<shard>-<gen>.log` cruft without bound. An empty file holds
    /// no records by construction (appends are atomic under the shard
    /// lock), so deleting it cannot lose data — and the fresh
    /// generation is still numbered past the highest ever seen, empty
    /// or not, keeping generation numbers monotonic.
    pub fn open(dir: &Path, shards: usize, fsync: FsyncPolicy) -> Result<Self, TsdbError> {
        if shards == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "shards",
                message: "WAL shard count must be at least 1",
            });
        }
        if fsync == FsyncPolicy::EveryN(0) {
            return Err(TsdbError::InvalidParameter {
                name: "fsync",
                message: "EveryN fsync policy requires N >= 1",
            });
        }
        fs::create_dir_all(dir).map_err(io_err)?;
        let prior = wal_files(dir)?;
        let highest = prior.iter().map(|f| f.generation).max().unwrap_or(0);
        for file in &prior {
            let empty = fs::metadata(&file.path).map(|m| m.len() == 0).unwrap_or(false);
            if empty {
                fs::remove_file(&file.path).map_err(io_err)?;
            }
        }
        let generation = highest + 1;
        let mut shard_files = Vec::with_capacity(shards);
        for shard in 0..shards {
            shard_files.push(Mutex::new(ShardFile::create(dir, shard, generation)?));
        }
        Ok(Self {
            inner: Arc::new(WalInner {
                dir: dir.to_path_buf(),
                fsync,
                generation: AtomicU64::new(generation),
                shards: shard_files,
                records: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                rotations: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                has_error: AtomicBool::new(false),
                last_error: Mutex::new(None),
                metrics: OnceLock::new(),
            }),
        })
    }

    /// Number of per-shard log files.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.inner.fsync
    }

    /// The generation current appends go to.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::SeqCst)
    }

    /// Installs latency instrumentation (append/fsync histograms).
    /// First call wins; later calls are ignored — the hot path reads
    /// the cell with one atomic load.
    pub fn set_metrics(&self, metrics: WalMetrics) {
        let _ = self.inner.metrics.set(metrics);
    }

    /// Rendering of the most recent append/fsync failure, or `None`
    /// when the latest append succeeded (a later success clears it).
    pub fn last_error(&self) -> Option<String> {
        if !self.inner.has_error.load(Ordering::Relaxed) {
            return None;
        }
        self.inner
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn note_error(&self, e: &TsdbError) {
        self.inner.errors.fetch_add(1, Ordering::Relaxed);
        *self
            .inner
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(e.to_string());
        self.inner.has_error.store(true, Ordering::Relaxed);
    }

    fn note_success(&self) {
        if self.inner.has_error.load(Ordering::Relaxed) {
            *self
                .inner
                .last_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = None;
            self.inner.has_error.store(false, Ordering::Relaxed);
        }
    }

    /// Runs `apply` (the store write) and, when it succeeds, appends the
    /// applied point to shard `shard`'s log — both under the shard's log
    /// lock, so per-series record order in the log always equals store
    /// apply order even when concurrent writers hit the same series.
    ///
    /// `apply` errors pass through without logging. An append error after
    /// a successful apply leaves the point live in memory but outside the
    /// recovery set; it is returned so the caller can surface a write
    /// failure.
    pub fn log_applied<F>(
        &self,
        shard: usize,
        key: &SeriesKey,
        point: DataPoint,
        apply: F,
    ) -> Result<(), TsdbError>
    where
        F: FnOnce() -> Result<(), TsdbError>,
    {
        let slot = self
            .inner
            .shards
            .get(shard)
            .ok_or(TsdbError::InvalidParameter {
                name: "shard",
                message: "WAL shard index out of range",
            })?;
        let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
        apply()?;
        self.append_locked(&mut guard, key, point)
    }

    /// Appends one record without a paired store write (tooling, tests).
    pub fn append(&self, shard: usize, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.log_applied(shard, key, point, || Ok(()))
    }

    fn append_locked(
        &self,
        sf: &mut ShardFile,
        key: &SeriesKey,
        point: DataPoint,
    ) -> Result<(), TsdbError> {
        let started = Instant::now();
        let record = encode_record(key, point);
        if let Err(e) = sf.file.write_all(&record).map_err(io_err) {
            self.note_error(&e);
            return Err(e);
        }
        if let Some(metrics) = self.inner.metrics.get() {
            metrics.append.observe_duration(started.elapsed());
        }
        self.inner.records.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(record.len() as u64, Ordering::Relaxed);
        sf.unsynced += 1;
        let due = match self.inner.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => sf.unsynced >= n,
            FsyncPolicy::Interval(d) => sf.last_sync.elapsed() >= d,
        };
        if due {
            self.sync_shard(sf)?;
        }
        self.note_success();
        Ok(())
    }

    fn sync_shard(&self, sf: &mut ShardFile) -> Result<(), TsdbError> {
        if sf.unsynced == 0 {
            return Ok(());
        }
        let started = Instant::now();
        if let Err(e) = sf.file.sync_data().map_err(io_err) {
            self.note_error(&e);
            return Err(e);
        }
        if let Some(metrics) = self.inner.metrics.get() {
            metrics.fsync.observe_duration(started.elapsed());
        }
        sf.unsynced = 0;
        sf.last_sync = Instant::now();
        self.inner.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes and fsyncs every shard file (drain-time sealing): after
    /// this returns, everything appended so far is on stable storage.
    pub fn seal(&self) -> Result<(), TsdbError> {
        for slot in &self.inner.shards {
            let mut sf = slot.lock().unwrap_or_else(PoisonError::into_inner);
            self.sync_shard(&mut sf)?;
        }
        Ok(())
    }

    /// Moves every shard onto a fresh generation and returns it. Records
    /// appended before the call land in generations `< returned`; a
    /// snapshot saved *after* this call therefore covers those
    /// generations, making them safe to [`Wal::discard_before`].
    pub fn rotate(&self) -> Result<u64, TsdbError> {
        let next = self.inner.generation.fetch_add(1, Ordering::SeqCst) + 1;
        for (shard, slot) in self.inner.shards.iter().enumerate() {
            let mut sf = slot.lock().unwrap_or_else(PoisonError::into_inner);
            self.sync_shard(&mut sf)?;
            *sf = ShardFile::create(&self.inner.dir, shard, next)?;
        }
        self.inner.rotations.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }

    /// Deletes log files of generations strictly older than `generation`.
    /// Call only after a snapshot covering those generations was durably
    /// written. Returns the number of files removed.
    pub fn discard_before(&self, generation: u64) -> Result<usize, TsdbError> {
        let mut removed = 0;
        for file in wal_files(&self.inner.dir)? {
            if file.generation < generation {
                fs::remove_file(&file.path).map_err(io_err)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Snapshot of the append counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.inner.records.load(Ordering::Relaxed),
            bytes: self.inner.bytes.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            rotations: self.inner.rotations.load(Ordering::Relaxed),
            errors: self.inner.errors.load(Ordering::Relaxed),
        }
    }
}

fn io_err(e: std::io::Error) -> TsdbError {
    TsdbError::Io {
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RangeQuery;
    use crate::sharded::{ShardedConfig, ShardedDb};
    use crate::tags::Selector;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "asap-wal-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(name: &str) -> SeriesKey {
        SeriesKey::metric(name).with_tag("host", "a")
    }

    #[test]
    fn crc32_check_value() {
        // The standard CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let mut bytes = b"asap wal record".to_vec();
        let clean = crc32(&bytes);
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), clean, "flip at bit {i} went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }

    #[test]
    fn record_roundtrip_and_len() {
        let k = key("cpu");
        let p = DataPoint::new(-42, 3.5);
        let rec = encode_record(&k, p);
        assert_eq!(rec.len(), record_len(&k));
        let seg = scan(&rec);
        assert!(seg.damage.is_none());
        assert_eq!(seg.clean_bytes, rec.len() as u64);
        assert_eq!(seg.records, vec![WalRecord { key: k, point: p }]);
    }

    #[test]
    fn scan_reports_torn_and_corrupt_tails() {
        let k = key("cpu");
        let mut bytes = encode_record(&k, DataPoint::new(1, 1.0));
        bytes.extend_from_slice(&encode_record(&k, DataPoint::new(2, 2.0)));
        let full = scan(&bytes).records.len();
        assert_eq!(full, 2);
        let first = record_len(&k);
        // Torn header: 5 of the second record's 8 header bytes survive.
        let seg = scan(&bytes[..first + 5]);
        assert_eq!(seg.records.len(), 1);
        assert!(seg.damage.unwrap().contains("torn record header"));
        // Torn payload.
        let seg = scan(&bytes[..bytes.len() - 3]);
        assert_eq!(seg.records.len(), 1);
        assert!(seg.damage.unwrap().contains("torn record payload"));
        // CRC mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let seg = scan(&flipped);
        assert_eq!(seg.records.len(), 1);
        assert!(seg.damage.unwrap().contains("CRC mismatch"));
        // Implausible length.
        let mut huge = bytes.clone();
        huge[first..first + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let seg = scan(&huge);
        assert_eq!(seg.records.len(), 1);
        assert!(seg.damage.unwrap().contains("implausible"));
    }

    #[test]
    fn fsync_policy_grammar_roundtrip() {
        for (text, policy) in [
            ("always", FsyncPolicy::Always),
            ("every=64", FsyncPolicy::EveryN(64)),
            ("interval-ms=250", FsyncPolicy::Interval(Duration::from_millis(250))),
        ] {
            assert_eq!(text.parse::<FsyncPolicy>().unwrap(), policy);
            assert_eq!(policy.to_string(), text);
        }
        for bad in ["", "sometimes", "every=0", "every=x", "interval-ms=0"] {
            assert!(bad.parse::<FsyncPolicy>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn file_name_roundtrip_ignores_foreign_names() {
        assert_eq!(parse_file_name(&file_name(3, 17)), Some((3, 17)));
        for foreign in ["wal-1.log", "wal-a-1.log", "snap.bin", "wal-1-2.tmp"] {
            assert_eq!(parse_file_name(foreign), None);
        }
    }

    #[test]
    fn open_starts_a_fresh_generation_and_replays_prior_runs() {
        let dir = temp_dir("gen");
        let wal = Wal::open(&dir, 2, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.generation(), 1);
        wal.append(0, &key("cpu"), DataPoint::new(1, 1.0)).unwrap();
        drop(wal);
        let wal = Wal::open(&dir, 2, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.generation(), 2);
        wal.append(0, &key("cpu"), DataPoint::new(2, 2.0)).unwrap();
        wal.seal().unwrap();

        let db = ShardedDb::with_config(ShardedConfig::new(2, 64));
        let report = replay(&dir, &db).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.damaged, 0);
        // Both generations' written files exist; gen-1's untouched
        // shard-1 file was empty and is cleaned up by the second open.
        assert_eq!(wal_files(&dir).unwrap().len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_loops_do_not_accumulate_empty_generations() {
        let dir = temp_dir("restart_loop");
        let wal = Wal::open(&dir, 2, FsyncPolicy::Always).unwrap();
        wal.append(0, &key("cpu"), DataPoint::new(1, 1.0)).unwrap();
        wal.seal().unwrap();
        drop(wal);

        // A crash-looping server opens and closes the log many times
        // without writing: the file count must stay bounded (the one
        // written file + the current generation's fresh files), while
        // generation numbers keep climbing past everything ever seen.
        for round in 0..10u64 {
            let wal = Wal::open(&dir, 2, FsyncPolicy::Always).unwrap();
            assert_eq!(wal.generation(), 2 + round);
            assert_eq!(
                wal_files(&dir).unwrap().len(),
                3,
                "round {round} leaked empty generation files"
            );
            wal.seal().unwrap();
        }

        // The surviving record still replays after all that churn.
        let db = ShardedDb::with_config(ShardedConfig::new(2, 64));
        let report = replay(&dir, &db).unwrap();
        assert_eq!((report.applied, report.damaged), (1, 0));
        let oracle = ShardedDb::with_config(ShardedConfig::new(2, 64));
        oracle.write(&key("cpu"), DataPoint::new(1, 1.0)).unwrap();
        assert_eq!(
            db.query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap(),
            oracle.query_selector(&Selector::any(), RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_records_already_in_the_store() {
        let dir = temp_dir("skip");
        let wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        for ts in 1..=5 {
            wal.append(0, &key("cpu"), DataPoint::new(ts, ts as f64)).unwrap();
        }
        let db = ShardedDb::with_config(ShardedConfig::new(1, 64));
        for ts in 1..=3 {
            db.write(&key("cpu"), DataPoint::new(ts, ts as f64)).unwrap();
        }
        let report = replay(&dir, &db).unwrap();
        assert_eq!(report.skipped, 3);
        assert_eq!(report.applied, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotate_and_discard_keep_only_the_tail() {
        let dir = temp_dir("rotate");
        let wal = Wal::open(&dir, 2, FsyncPolicy::EveryN(100)).unwrap();
        wal.append(0, &key("cpu"), DataPoint::new(1, 1.0)).unwrap();
        let boundary = wal.rotate().unwrap();
        assert_eq!(boundary, 2);
        wal.append(0, &key("cpu"), DataPoint::new(2, 2.0)).unwrap();
        assert_eq!(wal.discard_before(boundary).unwrap(), 2);
        let files = wal_files(&dir).unwrap();
        assert!(files.iter().all(|f| f.generation == boundary));
        wal.seal().unwrap();
        let db = ShardedDb::with_config(ShardedConfig::new(2, 64));
        let report = replay(&dir, &db).unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(wal.stats().rotations, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_track_appends_and_fsyncs() {
        let dir = temp_dir("stats");
        let wal = Wal::open(&dir, 1, FsyncPolicy::EveryN(2)).unwrap();
        let k = key("cpu");
        for ts in 1..=4 {
            wal.append(0, &k, DataPoint::new(ts, 0.5)).unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.bytes, 4 * record_len(&k) as u64);
        assert_eq!(stats.fsyncs, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_and_fsync_latency_land_in_installed_histograms() {
        let dir = temp_dir("obs");
        let wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        let registry = crate::obs::Registry::new();
        wal.set_metrics(crate::obs::WalMetrics::new(&registry));
        for ts in 1..=3 {
            wal.append(0, &key("cpu"), DataPoint::new(ts, 1.0)).unwrap();
        }
        assert_eq!(registry.histogram("wal.append_micros").snapshot().count, 3);
        assert_eq!(registry.histogram("wal.fsync_micros").snapshot().count, 3);
        assert_eq!(wal.stats().errors, 0);
        assert_eq!(wal.last_error(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn last_error_clears_on_a_later_successful_append() {
        let dir = temp_dir("lasterr");
        let wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        wal.note_error(&TsdbError::Io {
            message: "disk full".to_owned(),
        });
        assert_eq!(wal.stats().errors, 1);
        assert!(wal.last_error().expect("error recorded").contains("disk full"));
        wal.append(0, &key("cpu"), DataPoint::new(1, 1.0)).unwrap();
        assert_eq!(wal.last_error(), None, "a successful append clears the error");
        assert_eq!(wal.stats().errors, 1, "error history is cumulative");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_degenerate_parameters() {
        let dir = temp_dir("reject");
        assert!(Wal::open(&dir, 0, FsyncPolicy::Always).is_err());
        assert!(Wal::open(&dir, 1, FsyncPolicy::EveryN(0)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
