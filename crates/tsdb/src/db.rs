//! The database facade: a single-[`Shard`] engine front-end.

use std::sync::Arc;

use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::{RangeQuery, SeriesReader, SeriesWriter};
use crate::shard::Shard;
use crate::tags::{Selector, SeriesKey};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Points per sealed block (the memtable seal threshold).
    pub block_capacity: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            block_capacity: 1024,
        }
    }
}

/// Per-series occupancy statistics, as returned by [`Tsdb::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// The series identity.
    pub key: SeriesKey,
    /// Total stored points.
    pub points: usize,
    /// Sealed block count.
    pub blocks: usize,
    /// Compressed bytes across sealed blocks.
    pub compressed_bytes: usize,
}

/// An embedded, in-memory, concurrent time-series database.
///
/// Series are keyed by [`SeriesKey`] (metric + tags). Writers append
/// strictly-increasing timestamps per series; the engine seals full
/// memtables into Gorilla-compressed [`crate::block::Block`]s. Readers run
/// [`RangeQuery`]s against a single series or a [`Selector`] over many.
///
/// `Tsdb` is a facade over exactly one [`Shard`] — the storage partition
/// type the engine is built from. The horizontally partitioned
/// [`crate::sharded::ShardedDb`] front-end mirrors this API over many
/// shards and, because both run the identical `Shard` code, produces
/// byte-identical query results.
///
/// Concurrency model: a `RwLock` over the series map (series creation is
/// rare), with each store behind its own `RwLock` so unrelated series never
/// contend. Handles are `Arc`-shared; `Tsdb` itself is cheap to clone.
#[derive(Debug, Clone)]
pub struct Tsdb {
    inner: Arc<Shard>,
}

impl Default for Tsdb {
    fn default() -> Self {
        Self::with_config(TsdbConfig::default())
    }
}

impl Tsdb {
    /// Creates an engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given configuration.
    pub fn with_config(config: TsdbConfig) -> Self {
        Self {
            inner: Arc::new(Shard::new(config)),
        }
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.inner.series_count()
    }

    /// Writes one point, creating the series on first touch.
    pub fn write(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.inner.write(key, point)
    }

    /// Writes a batch of points to one series (points must be in order).
    pub fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        self.inner.write_batch(key, points)
    }

    /// Runs a query against one series.
    pub fn query(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        self.inner.query(key, query)
    }

    /// Runs a query against every series matching `selector`, returning
    /// `(key, shaped points)` pairs in key order.
    pub fn query_selector(
        &self,
        selector: &Selector,
        query: RangeQuery,
    ) -> Result<Vec<(SeriesKey, Vec<DataPoint>)>, TsdbError> {
        self.inner.query_selector(selector, query)
    }

    /// Lists keys of series matching `selector`, in key order.
    pub fn list_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.inner.list_series(selector)
    }

    /// Seals every series' memtable (e.g. before measuring compression).
    pub fn flush(&self) -> Result<(), TsdbError> {
        self.inner.flush()
    }

    /// Evicts sealed blocks older than `cutoff` from every series and drops
    /// series left completely empty. Returns total evicted points.
    pub fn evict_before(&self, cutoff: i64) -> usize {
        self.inner.evict_before(cutoff)
    }

    /// Summary statistics (count/min/max/sum/mean) of one series over
    /// `[start, end)`, answered from sealed-block metadata where possible
    /// (no decompression for fully covered blocks). Returns `Ok(None)`
    /// when the range holds no points.
    pub fn summarize(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
    ) -> Result<Option<crate::series::RangeSummary>, TsdbError> {
        self.inner.summarize(key, start, end)
    }

    /// Returns clones of one series' sealed blocks (cheap: payloads are
    /// reference-counted). Used by snapshot persistence; call
    /// [`Tsdb::flush`] first to include memtable contents.
    pub fn export_blocks(&self, key: &SeriesKey) -> Result<Vec<crate::block::Block>, TsdbError> {
        self.inner.export_blocks(key)
    }

    /// Imports pre-sealed blocks into a series (snapshot restore), creating
    /// it if needed. Blocks must be strictly after any existing data.
    pub fn import_blocks(
        &self,
        key: &SeriesKey,
        blocks: Vec<crate::block::Block>,
    ) -> Result<(), TsdbError> {
        self.inner.import_blocks(key, blocks)
    }

    /// Evicts sealed blocks older than `cutoff` from one series. The series
    /// is dropped if left completely empty. Returns evicted points; missing
    /// series evict nothing.
    pub fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        self.inner.evict_series_before(key, cutoff)
    }

    /// Per-series occupancy statistics, in key order.
    pub fn stats(&self) -> Vec<SeriesStats> {
        self.inner.stats()
    }
}

impl SeriesReader for Tsdb {
    fn read_series(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        self.query(key, query)
    }

    fn matching_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.list_series(selector)
    }
}

impl SeriesWriter for Tsdb {
    fn write_point(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        self.write(key, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregator, FillPolicy};

    fn cpu(host: &str) -> SeriesKey {
        SeriesKey::metric("cpu").with_tag("host", host)
    }

    #[test]
    fn write_then_query_round_trips() {
        let db = Tsdb::new();
        let key = cpu("a");
        for i in 0..100 {
            db.write(&key, DataPoint::new(i, i as f64)).unwrap();
        }
        let out = db.query(&key, RangeQuery::raw(10, 20)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0], DataPoint::new(10, 10.0));
    }

    #[test]
    fn unknown_series_errors() {
        let db = Tsdb::new();
        let err = db.query(&cpu("ghost"), RangeQuery::raw(0, 10)).unwrap_err();
        assert!(matches!(err, TsdbError::SeriesNotFound { .. }));
        assert!(err.to_string().contains("cpu{host=ghost}"));
    }

    #[test]
    fn per_series_ordering_is_independent() {
        let db = Tsdb::new();
        db.write(&cpu("a"), DataPoint::new(100, 1.0)).unwrap();
        // A different series may be behind series `a` in time.
        db.write(&cpu("b"), DataPoint::new(50, 1.0)).unwrap();
        // But series `a` itself cannot go backwards.
        assert!(db.write(&cpu("a"), DataPoint::new(50, 1.0)).is_err());
    }

    #[test]
    fn bucketed_query_through_facade() {
        let db = Tsdb::new();
        let key = cpu("a");
        for i in 0..60 {
            db.write(&key, DataPoint::new(i, 1.0)).unwrap();
        }
        let out = db
            .query(
                &key,
                RangeQuery::bucketed(0, 60, 10).aggregate(Aggregator::Count),
            )
            .unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|p| p.value == 10.0));
    }

    #[test]
    fn selector_queries_fan_out_in_key_order() {
        let db = Tsdb::new();
        for host in ["c", "a", "b"] {
            let key = cpu(host);
            for i in 0..10 {
                db.write(&key, DataPoint::new(i, 1.0)).unwrap();
            }
        }
        db.write(&SeriesKey::metric("mem"), DataPoint::new(0, 1.0))
            .unwrap();
        let results = db
            .query_selector(&Selector::metric("cpu"), RangeQuery::raw(0, 10))
            .unwrap();
        let hosts: Vec<_> = results
            .iter()
            .map(|(k, _)| k.tag("host").unwrap().to_string())
            .collect();
        assert_eq!(hosts, vec!["a", "b", "c"]);
        assert!(results.iter().all(|(_, pts)| pts.len() == 10));
    }

    #[test]
    fn flush_then_stats_reports_blocks() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 16 });
        let key = cpu("a");
        for i in 0..40 {
            db.write(&key, DataPoint::new(i, 0.0)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].points, 40);
        assert_eq!(stats[0].blocks, 3, "two full seals plus one flush seal");
        assert!(stats[0].compressed_bytes > 0);
    }

    #[test]
    fn evict_drops_empty_series() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 8 });
        let key = cpu("a");
        for i in 0..8 {
            db.write(&key, DataPoint::new(i, 0.0)).unwrap();
        }
        assert_eq!(db.series_count(), 1);
        let evicted = db.evict_before(i64::MAX);
        assert_eq!(evicted, 8);
        assert_eq!(db.series_count(), 0, "fully evicted series disappears");
    }

    #[test]
    fn fill_policies_reach_through_facade() {
        let db = Tsdb::new();
        let key = cpu("a");
        db.write(&key, DataPoint::new(5, 2.0)).unwrap();
        db.write(&key, DataPoint::new(25, 4.0)).unwrap();
        let out = db
            .query(
                &key,
                RangeQuery::bucketed(0, 30, 10).fill(FillPolicy::Linear),
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].value, 3.0, "interpolated interior bucket");
    }

    #[test]
    fn concurrent_writers_do_not_interfere() {
        let db = Tsdb::new();
        let mut handles = Vec::new();
        for w in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let key = cpu(&format!("h{w}"));
                for i in 0..1000i64 {
                    db.write(&key, DataPoint::new(i, w as f64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.series_count(), 8);
        for w in 0..8 {
            let out = db
                .query(&cpu(&format!("h{w}")), RangeQuery::raw(0, 1000))
                .unwrap();
            assert_eq!(out.len(), 1000);
            assert!(out.iter().all(|p| p.value == w as f64));
        }
    }
}
