//! The database facade: a concurrent map of series stores.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::TsdbError;
use crate::point::DataPoint;
use crate::query::RangeQuery;
use crate::series::SeriesStore;
use crate::tags::{Selector, SeriesKey};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct TsdbConfig {
    /// Points per sealed block (the memtable seal threshold).
    pub block_capacity: usize,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            block_capacity: 1024,
        }
    }
}

/// Per-series occupancy statistics, as returned by [`Tsdb::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// The series identity.
    pub key: SeriesKey,
    /// Total stored points.
    pub points: usize,
    /// Sealed block count.
    pub blocks: usize,
    /// Compressed bytes across sealed blocks.
    pub compressed_bytes: usize,
}

/// An embedded, in-memory, concurrent time-series database.
///
/// Series are keyed by [`SeriesKey`] (metric + tags). Writers append
/// strictly-increasing timestamps per series; the engine seals full
/// memtables into Gorilla-compressed [`crate::block::Block`]s. Readers run
/// [`RangeQuery`]s against a single series or a [`Selector`] over many.
///
/// Concurrency model: a `RwLock` over the series map (series creation is
/// rare), with each store behind its own `RwLock` so unrelated series never
/// contend. Handles are `Arc`-shared; `Tsdb` itself is cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Tsdb {
    inner: Arc<TsdbInner>,
}

#[derive(Debug, Default)]
struct TsdbInner {
    config: RwLock<TsdbConfig>,
    series: RwLock<BTreeMap<SeriesKey, Arc<RwLock<SeriesStore>>>>,
}

impl Tsdb {
    /// Creates an engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with the given configuration.
    pub fn with_config(config: TsdbConfig) -> Self {
        let db = Self::new();
        *db.inner.config.write() = config;
        db
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.inner.series.read().len()
    }

    /// Writes one point, creating the series on first touch.
    pub fn write(&self, key: &SeriesKey, point: DataPoint) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let result = store.write().append(point);
        result
    }

    /// Writes a batch of points to one series (points must be in order).
    pub fn write_batch(&self, key: &SeriesKey, points: &[DataPoint]) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let mut guard = store.write();
        for &p in points {
            guard.append(p)?;
        }
        Ok(())
    }

    fn store_or_create(&self, key: &SeriesKey) -> Arc<RwLock<SeriesStore>> {
        if let Some(s) = self.inner.series.read().get(key) {
            return Arc::clone(s);
        }
        let block_capacity = self.inner.config.read().block_capacity;
        let mut map = self.inner.series.write();
        Arc::clone(
            map.entry(key.clone())
                .or_insert_with(|| Arc::new(RwLock::new(SeriesStore::new(block_capacity)))),
        )
    }

    fn store(&self, key: &SeriesKey) -> Result<Arc<RwLock<SeriesStore>>, TsdbError> {
        self.inner
            .series
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| TsdbError::SeriesNotFound {
                key: key.to_string(),
            })
    }

    /// Runs a query against one series.
    pub fn query(&self, key: &SeriesKey, query: RangeQuery) -> Result<Vec<DataPoint>, TsdbError> {
        query.validate()?;
        let store = self.store(key)?;
        let raw = store.read().scan(query.start, query.end)?;
        query.shape(&raw)
    }

    /// Runs a query against every series matching `selector`, returning
    /// `(key, shaped points)` pairs in key order.
    pub fn query_selector(
        &self,
        selector: &Selector,
        query: RangeQuery,
    ) -> Result<Vec<(SeriesKey, Vec<DataPoint>)>, TsdbError> {
        query.validate()?;
        let matching: Vec<(SeriesKey, Arc<RwLock<SeriesStore>>)> = self
            .inner
            .series
            .read()
            .iter()
            .filter(|(k, _)| selector.matches(k))
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect();
        let mut out = Vec::with_capacity(matching.len());
        for (key, store) in matching {
            let raw = store.read().scan(query.start, query.end)?;
            out.push((key, query.shape(&raw)?));
        }
        Ok(out)
    }

    /// Lists keys of series matching `selector`, in key order.
    pub fn list_series(&self, selector: &Selector) -> Vec<SeriesKey> {
        self.inner
            .series
            .read()
            .keys()
            .filter(|k| selector.matches(k))
            .cloned()
            .collect()
    }

    /// Seals every series' memtable (e.g. before measuring compression).
    pub fn flush(&self) -> Result<(), TsdbError> {
        let stores: Vec<_> = self.inner.series.read().values().cloned().collect();
        for store in stores {
            store.write().seal_active()?;
        }
        Ok(())
    }

    /// Evicts sealed blocks older than `cutoff` from every series and drops
    /// series left completely empty. Returns total evicted points.
    pub fn evict_before(&self, cutoff: i64) -> usize {
        let mut evicted = 0;
        let mut map = self.inner.series.write();
        map.retain(|_, store| {
            let mut guard = store.write();
            evicted += guard.evict_before(cutoff);
            !guard.is_empty()
        });
        evicted
    }

    /// Summary statistics (count/min/max/sum/mean) of one series over
    /// `[start, end)`, answered from sealed-block metadata where possible
    /// (no decompression for fully covered blocks). Returns `Ok(None)`
    /// when the range holds no points.
    pub fn summarize(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
    ) -> Result<Option<crate::series::RangeSummary>, TsdbError> {
        let store = self.store(key)?;
        let result = store.read().summarize(start, end);
        result
    }

    /// Returns clones of one series' sealed blocks (cheap: payloads are
    /// reference-counted). Used by snapshot persistence; call
    /// [`Tsdb::flush`] first to include memtable contents.
    pub fn export_blocks(&self, key: &SeriesKey) -> Result<Vec<crate::block::Block>, TsdbError> {
        let store = self.store(key)?;
        let guard = store.read();
        Ok(guard.blocks().to_vec())
    }

    /// Imports pre-sealed blocks into a series (snapshot restore), creating
    /// it if needed. Blocks must be strictly after any existing data.
    pub fn import_blocks(
        &self,
        key: &SeriesKey,
        blocks: Vec<crate::block::Block>,
    ) -> Result<(), TsdbError> {
        let store = self.store_or_create(key);
        let result = store.write().import_blocks(blocks);
        result
    }

    /// Evicts sealed blocks older than `cutoff` from one series. The series
    /// is dropped if left completely empty. Returns evicted points; missing
    /// series evict nothing.
    pub fn evict_series_before(&self, key: &SeriesKey, cutoff: i64) -> usize {
        let store = match self.store(key) {
            Ok(s) => s,
            Err(_) => return 0,
        };
        let (evicted, empty) = {
            let mut guard = store.write();
            let evicted = guard.evict_before(cutoff);
            (evicted, guard.is_empty())
        };
        if empty {
            self.inner.series.write().remove(key);
        }
        evicted
    }

    /// Per-series occupancy statistics, in key order.
    pub fn stats(&self) -> Vec<SeriesStats> {
        self.inner
            .series
            .read()
            .iter()
            .map(|(k, s)| {
                let guard = s.read();
                SeriesStats {
                    key: k.clone(),
                    points: guard.len(),
                    blocks: guard.block_count(),
                    compressed_bytes: guard.compressed_bytes(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregator, FillPolicy};

    fn cpu(host: &str) -> SeriesKey {
        SeriesKey::metric("cpu").with_tag("host", host)
    }

    #[test]
    fn write_then_query_round_trips() {
        let db = Tsdb::new();
        let key = cpu("a");
        for i in 0..100 {
            db.write(&key, DataPoint::new(i, i as f64)).unwrap();
        }
        let out = db.query(&key, RangeQuery::raw(10, 20)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0], DataPoint::new(10, 10.0));
    }

    #[test]
    fn unknown_series_errors() {
        let db = Tsdb::new();
        let err = db.query(&cpu("ghost"), RangeQuery::raw(0, 10)).unwrap_err();
        assert!(matches!(err, TsdbError::SeriesNotFound { .. }));
        assert!(err.to_string().contains("cpu{host=ghost}"));
    }

    #[test]
    fn per_series_ordering_is_independent() {
        let db = Tsdb::new();
        db.write(&cpu("a"), DataPoint::new(100, 1.0)).unwrap();
        // A different series may be behind series `a` in time.
        db.write(&cpu("b"), DataPoint::new(50, 1.0)).unwrap();
        // But series `a` itself cannot go backwards.
        assert!(db.write(&cpu("a"), DataPoint::new(50, 1.0)).is_err());
    }

    #[test]
    fn bucketed_query_through_facade() {
        let db = Tsdb::new();
        let key = cpu("a");
        for i in 0..60 {
            db.write(&key, DataPoint::new(i, 1.0)).unwrap();
        }
        let out = db
            .query(
                &key,
                RangeQuery::bucketed(0, 60, 10).aggregate(Aggregator::Count),
            )
            .unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|p| p.value == 10.0));
    }

    #[test]
    fn selector_queries_fan_out_in_key_order() {
        let db = Tsdb::new();
        for host in ["c", "a", "b"] {
            let key = cpu(host);
            for i in 0..10 {
                db.write(&key, DataPoint::new(i, 1.0)).unwrap();
            }
        }
        db.write(&SeriesKey::metric("mem"), DataPoint::new(0, 1.0))
            .unwrap();
        let results = db
            .query_selector(&Selector::metric("cpu"), RangeQuery::raw(0, 10))
            .unwrap();
        let hosts: Vec<_> = results
            .iter()
            .map(|(k, _)| k.tag("host").unwrap().to_string())
            .collect();
        assert_eq!(hosts, vec!["a", "b", "c"]);
        assert!(results.iter().all(|(_, pts)| pts.len() == 10));
    }

    #[test]
    fn flush_then_stats_reports_blocks() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 16 });
        let key = cpu("a");
        for i in 0..40 {
            db.write(&key, DataPoint::new(i, 0.0)).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].points, 40);
        assert_eq!(stats[0].blocks, 3, "two full seals plus one flush seal");
        assert!(stats[0].compressed_bytes > 0);
    }

    #[test]
    fn evict_drops_empty_series() {
        let db = Tsdb::with_config(TsdbConfig { block_capacity: 8 });
        let key = cpu("a");
        for i in 0..8 {
            db.write(&key, DataPoint::new(i, 0.0)).unwrap();
        }
        assert_eq!(db.series_count(), 1);
        let evicted = db.evict_before(i64::MAX);
        assert_eq!(evicted, 8);
        assert_eq!(db.series_count(), 0, "fully evicted series disappears");
    }

    #[test]
    fn fill_policies_reach_through_facade() {
        let db = Tsdb::new();
        let key = cpu("a");
        db.write(&key, DataPoint::new(5, 2.0)).unwrap();
        db.write(&key, DataPoint::new(25, 4.0)).unwrap();
        let out = db
            .query(
                &key,
                RangeQuery::bucketed(0, 30, 10).fill(FillPolicy::Linear),
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[1].value, 3.0, "interpolated interior bucket");
    }

    #[test]
    fn concurrent_writers_do_not_interfere() {
        let db = Tsdb::new();
        let mut handles = Vec::new();
        for w in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                let key = cpu(&format!("h{w}"));
                for i in 0..1000i64 {
                    db.write(&key, DataPoint::new(i, w as f64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.series_count(), 8);
        for w in 0..8 {
            let out = db
                .query(&cpu(&format!("h{w}")), RangeQuery::raw(0, 1000))
                .unwrap();
            assert_eq!(out.len(), 1000);
            assert!(out.iter().all(|p| p.value == w as f64));
        }
    }
}
