//! Property-based tests for the operations layer: concurrent ingest,
//! sharded snapshots, and per-shard retention.
//!
//! The central invariant mirrors `sharded_properties.rs`: every parallel
//! operations path is observationally identical to its serial
//! single-shard oracle. No expected value below is baked in; everything
//! is derived from the oracle (so the tests are independent of the rand
//! shim's stream, per the ROADMAP note on golden values).
//!
//! * pipeline ingest (parser workers → per-shard channels → per-shard
//!   writers) ≡ serial `line_protocol::ingest` into a [`Tsdb`], for every
//!   query shape, at any parser/shard/queue/chunk configuration;
//! * snapshot save→load ≡ identity, across versions (v1 ↔ v2) and shard
//!   counts, with v2 bytes independent of the writer's shard count;
//! * the sharded compactor ≡ the serial compactor: same reports, same
//!   store contents, no double-counted rollup buckets, raw eviction never
//!   ahead of the rollup watermark;
//! * saving under concurrent writers neither deadlocks nor produces an
//!   unloadable file, and every loaded series is a prefix of the final
//!   series.

use asap_tsdb::query::Aggregator;
use asap_tsdb::{
    line_protocol, load_sharded_snapshot, load_snapshot, pipeline_ingest, rollup_key,
    save_sharded_snapshot, save_snapshot, Compactor, DataPoint, IngestConfig, RangeQuery,
    RetentionPolicy, RollupLevel, Selector, SeriesKey, ShardedConfig, ShardedDb, Tsdb,
    TsdbConfig,
};
use proptest::prelude::*;

/// A generated ingest case: an interleaved line-protocol document plus
/// pipeline and storage knobs.
#[derive(Debug, Clone)]
struct OpsCase {
    doc: String,
    fields: usize,
    shards: usize,
    block_capacity: usize,
    ingest: IngestConfig,
}

const FIELD_NAMES: [&str; 3] = ["usage", "idle", "iowait"];

/// Renders per-series timestamp runs into one interleaved line-protocol
/// document: records round-robin across hosts, each with `fields` field
/// pairs (so one record feeds several series), with comment and blank
/// lines sprinkled deterministically.
fn render_doc(series: &[Vec<DataPoint>], fields: usize) -> String {
    let mut cursors = vec![0usize; series.len()];
    let mut doc = String::new();
    let mut emitted = 0usize;
    loop {
        let mut progressed = false;
        for (h, points) in series.iter().enumerate() {
            let Some(p) = points.get(cursors[h]) else {
                continue;
            };
            cursors[h] += 1;
            progressed = true;
            doc.push_str(&format!("cpu,host=h{h} "));
            for (f, name) in FIELD_NAMES.iter().enumerate().take(fields) {
                if f > 0 {
                    doc.push(',');
                }
                doc.push_str(&format!("{name}={}", p.value + f as f64));
            }
            doc.push_str(&format!(" {}\n", p.timestamp));
            emitted += 1;
            if emitted.is_multiple_of(7) {
                doc.push_str("# interleaved comment\n");
            }
            if emitted.is_multiple_of(11) {
                doc.push('\n');
            }
        }
        if !progressed {
            return doc;
        }
    }
}

/// Strategy: per-series strictly-increasing timestamp runs, a document
/// rendered from them, and pipeline/storage knobs.
fn ops_case() -> impl Strategy<Value = OpsCase> {
    (
        (
            prop::collection::vec(
                prop::collection::vec((1i64..400, -1.0e3..1.0e3f64), 0..60),
                1..5,
            ),
            1usize..4, // fields per record
            1usize..6, // shards
        ),
        (
            1usize..40, // block capacity
            1usize..5,  // parser workers
            1usize..4,  // queue depth
            1usize..20, // chunk lines
        ),
    )
        .prop_map(
            |((series, fields, shards), (block_capacity, parsers, queue_depth, chunk_lines))| {
                let series: Vec<Vec<DataPoint>> = series
                    .into_iter()
                    .map(|gaps| {
                        let mut ts = -1_000i64;
                        gaps.into_iter()
                            .map(|(gap, v)| {
                                ts += gap;
                                DataPoint::new(ts, v)
                            })
                            .collect()
                    })
                    .collect();
                OpsCase {
                    doc: render_doc(&series, fields),
                    fields,
                    shards,
                    block_capacity,
                    ingest: IngestConfig {
                        parsers,
                        queue_depth,
                        chunk_lines,
                        lateness: None,
                        ..IngestConfig::default()
                    },
                }
            },
        )
}

/// Ingests the case's document through the pipeline (sharded) and
/// serially (single-shard oracle); the pair must be indistinguishable.
fn twin_ingest(case: &OpsCase) -> (ShardedDb, Tsdb, usize) {
    let sharded = ShardedDb::with_config(ShardedConfig::new(case.shards, case.block_capacity));
    let report = pipeline_ingest(&sharded, &case.doc, 0, &case.ingest).unwrap();
    assert!(report.is_clean(), "generated docs are valid: {report:?}");
    let oracle = Tsdb::with_config(TsdbConfig {
        block_capacity: case.block_capacity,
    });
    let serial_points = line_protocol::ingest(&oracle, &case.doc, 0).unwrap();
    assert_eq!(report.points, serial_points);
    (sharded, oracle, serial_points)
}

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

proptest! {
    /// Pipeline-ingested sharded store ≡ serially ingested single-shard
    /// oracle, for every query shape.
    #[test]
    fn pipeline_ingest_matches_serial_oracle(case in ops_case()) {
        let (sharded, oracle, _) = twin_ingest(&case);
        prop_assert_eq!(sharded.series_count(), oracle.series_count());

        let sel = Selector::metric("cpu");
        prop_assert_eq!(sharded.list_series(&sel), oracle.list_series(&sel));
        prop_assert_eq!(
            sharded.query_selector(&sel, full()).unwrap(),
            oracle.query_selector(&sel, full()).unwrap()
        );
        for key in oracle.list_series(&Selector::any()) {
            prop_assert_eq!(
                sharded.query(&key, full()).unwrap(),
                oracle.query(&key, full()).unwrap()
            );
            let bucketed = RangeQuery::bucketed(-1_000, 25_000, 43).aggregate(Aggregator::Max);
            prop_assert_eq!(
                sharded.query(&key, bucketed).unwrap(),
                oracle.query(&key, bucketed).unwrap()
            );
            prop_assert_eq!(
                sharded.summarize(&key, -250, 9_000).unwrap(),
                oracle.summarize(&key, -250, 9_000).unwrap()
            );
        }

        // Identical seal boundaries and compressed footprint once both
        // engines flush.
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        prop_assert_eq!(sharded.stats(), oracle.stats());
    }

    /// The ingest report itself is deterministic: any two configurations
    /// produce the same report for the same document.
    #[test]
    fn pipeline_report_is_configuration_independent(case in ops_case()) {
        let db_a = ShardedDb::with_config(ShardedConfig::new(case.shards, case.block_capacity));
        let report_a = pipeline_ingest(&db_a, &case.doc, 0, &case.ingest).unwrap();
        let db_b = ShardedDb::with_config(ShardedConfig::new(1, case.block_capacity));
        let report_b = pipeline_ingest(&db_b, &case.doc, 0, &IngestConfig::default()).unwrap();
        prop_assert_eq!(&report_a, &report_b);
        prop_assert_eq!(report_a.lines, case.doc.lines().count());
        // Every valid record contributes `fields` points.
        prop_assert_eq!(report_a.points % case.fields.min(FIELD_NAMES.len()), 0);
    }

    /// Snapshot save→load is the identity, across format versions and
    /// arbitrary source/destination shard counts — including the v1
    /// (single-shard, sequential) → v2 (sharded, parallel) cross-load —
    /// and v2 bytes do not depend on the writer's shard count.
    #[test]
    fn snapshots_round_trip_across_versions_and_shard_counts(case in ops_case()) {
        let (sharded, oracle, _) = twin_ingest(&case);
        let dir = std::env::temp_dir().join("asap_tsdb_ops_properties");
        std::fs::create_dir_all(&dir).unwrap();
        let stamp = format!("{}_{}", std::process::id(), case.doc.len());

        // v2 written by the sharded engine, reloaded at a different shard
        // count, must equal the oracle.
        let v2 = dir.join(format!("{stamp}_v2.snap"));
        save_sharded_snapshot(&sharded, &v2).unwrap();
        let reload_shards = (case.shards % 6) + 1;
        let restored =
            load_sharded_snapshot(&v2, ShardedConfig::new(reload_shards, case.block_capacity))
                .unwrap();
        prop_assert_eq!(
            restored.query_selector(&Selector::any(), full()).unwrap(),
            oracle.query_selector(&Selector::any(), full()).unwrap()
        );
        // Saving flushed the sharded source, so seal boundaries in the
        // file equal the oracle's post-flush boundaries.
        oracle.flush().unwrap();
        prop_assert_eq!(restored.stats(), oracle.stats());

        // …and the same v2 file loads into a single-shard Tsdb.
        let into_tsdb = load_snapshot(&v2, TsdbConfig { block_capacity: case.block_capacity })
            .unwrap();
        prop_assert_eq!(
            into_tsdb.query_selector(&Selector::any(), full()).unwrap(),
            oracle.query_selector(&Selector::any(), full()).unwrap()
        );

        // v2 bytes are shard-count-invariant: a single-shard engine with
        // the same points writes the identical file.
        let v2_single = dir.join(format!("{stamp}_v2single.snap"));
        let single = ShardedDb::from_tsdb(
            &oracle,
            ShardedConfig::new(1, case.block_capacity),
        )
        .unwrap();
        save_sharded_snapshot(&single, &v2_single).unwrap();
        prop_assert_eq!(
            std::fs::read(&v2).unwrap(),
            std::fs::read(&v2_single).unwrap()
        );

        // v1 written by the single-shard oracle cross-loads into any
        // shard count.
        let v1 = dir.join(format!("{stamp}_v1.snap"));
        save_snapshot(&oracle, &v1).unwrap();
        let from_v1 =
            load_sharded_snapshot(&v1, ShardedConfig::new(case.shards, case.block_capacity))
                .unwrap();
        prop_assert_eq!(
            from_v1.query_selector(&Selector::any(), full()).unwrap(),
            oracle.query_selector(&Selector::any(), full()).unwrap()
        );

        for p in [v2, v2_single, v1] {
            std::fs::remove_file(p).ok();
        }
    }

    /// The sharded compactor is indistinguishable from the serial one:
    /// same reports at every step, same final store, watermarks shared —
    /// repeated runs at the same logical time materialize nothing.
    #[test]
    fn sharded_compaction_matches_serial_oracle(
        case in ops_case(),
        raw_ttl in 50i64..400,
        bucket in 1i64..60,
        rollup_ttl in 100i64..800,
    ) {
        let (sharded, oracle, _) = twin_ingest(&case);
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        let policy = || RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            rollups: vec![
                RollupLevel { bucket, aggregator: Aggregator::Mean, ttl: Some(rollup_ttl) },
                RollupLevel { bucket: bucket * 4, aggregator: Aggregator::Max, ttl: None },
            ],
        };
        let mut sharded_c = Compactor::new(policy()).unwrap();
        let mut serial_c = Compactor::new(policy()).unwrap();
        for now in [-500, 0, 0, 700, 700, 2_000, 30_000] {
            let a = sharded_c.run_sharded(&sharded, now).unwrap();
            let b = serial_c.run(&oracle, now).unwrap();
            prop_assert_eq!(a, b, "reports diverge at now={}", now);
            prop_assert_eq!(
                sharded.query_selector(&Selector::any(), full()).unwrap(),
                oracle.query_selector(&Selector::any(), full()).unwrap(),
                "store contents diverge at now={}", now
            );
        }
    }

    /// Raw data outlives its rollup watermark: at every step, every raw
    /// point not yet covered by the materialized rollup is still present,
    /// and repeated runs never double-count buckets.
    #[test]
    fn retention_never_evicts_ahead_of_watermark(
        case in ops_case(),
        raw_ttl in 1i64..100,
        bucket in 1i64..50,
    ) {
        let (sharded, _, _) = twin_ingest(&case);
        sharded.flush().unwrap();
        // Remember every raw point before compaction starts.
        let before = sharded.query_selector(&Selector::any(), full()).unwrap();
        let policy = RetentionPolicy {
            raw_ttl: Some(raw_ttl),
            rollups: vec![RollupLevel { bucket, aggregator: Aggregator::Sum, ttl: None }],
        };
        let mut c = Compactor::new(policy).unwrap();
        let mut total_rolled = 0usize;
        for now in [-2_000, -900, 100, 100, 1_500] {
            let report = c.run_sharded(&sharded, now).unwrap();
            total_rolled += report.rolled_up;
            // Every surviving-or-evicted raw point past the rollup
            // watermark must still be queryable: compare the raw tail.
            let complete_end = now.div_euclid(bucket) * bucket;
            for (key, points) in &before {
                let tail: Vec<DataPoint> = points
                    .iter()
                    .copied()
                    .filter(|p| p.timestamp >= complete_end)
                    .collect();
                let got = sharded
                    .query(key, RangeQuery::raw(complete_end, i64::MAX))
                    .unwrap_or_default();
                prop_assert_eq!(
                    got, tail,
                    "raw tail past the watermark lost (key {}, now {})", key, now
                );
            }
        }
        // The rollup series across all base series hold exactly one point
        // per materialized bucket: re-running at a repeated `now` added
        // nothing, and buckets are never double-counted.
        let mut rollup_points = 0usize;
        for (key, points) in sharded
            .query_selector(&Selector::any().tag_present(asap_tsdb::ROLLUP_TAG), full())
            .unwrap()
        {
            let mut stamps: Vec<i64> = points.iter().map(|p| p.timestamp).collect();
            stamps.dedup();
            prop_assert_eq!(stamps.len(), points.len(), "duplicate bucket in {}", key);
            rollup_points += points.len();
        }
        prop_assert_eq!(rollup_points, total_rolled);
    }
}

/// A save running against live writers must not deadlock, must produce a
/// loadable file, and every saved series must be a time-prefix of the
/// final series (the per-series consistency point `persist` documents).
#[test]
fn concurrent_writers_during_save_yield_loadable_prefix_snapshots() {
    let dir = std::env::temp_dir().join("asap_tsdb_ops_properties");
    std::fs::create_dir_all(&dir).unwrap();

    let db = ShardedDb::with_config(ShardedConfig::new(4, 16));
    let key = |w: usize| SeriesKey::metric("cpu").with_tag("host", format!("h{w}"));
    const WRITERS: usize = 6;
    const POINTS: i64 = 4_000;

    let mut snapshots = Vec::new();
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let db = db.clone();
            scope.spawn(move || {
                let key = key(w);
                for t in 0..POINTS {
                    db.write(&key, DataPoint::new(t, (t % 97) as f64)).unwrap();
                }
            });
        }
        // Race repeated saves (both formats) against the writers.
        for round in 0..6 {
            let path = dir.join(format!("live_{}_{round}.snap", std::process::id()));
            if round % 2 == 0 {
                save_sharded_snapshot(&db, &path).unwrap();
            } else {
                let single = Tsdb::new();
                // v1 save path races too, via a sharded->serial copy that
                // itself runs export under live writers.
                for k in db.list_series(&Selector::any()) {
                    db.flush().unwrap();
                    single.import_blocks(&k, db.export_blocks(&k).unwrap()).unwrap();
                }
                save_snapshot(&single, &path).unwrap();
            }
            snapshots.push(path);
        }
    });

    // Writers are done: the final contents are the full runs.
    for path in &snapshots {
        let restored = load_sharded_snapshot(path, ShardedConfig::new(3, 16)).unwrap();
        for w in 0..WRITERS {
            let k = key(w);
            // A snapshot taken before this series' first seal has no
            // record of it at all — a valid (empty) prefix.
            let saved = restored
                .query(&k, RangeQuery::raw(i64::MIN + 1, i64::MAX))
                .unwrap_or_default();
            let final_points = db.query(&k, RangeQuery::raw(i64::MIN + 1, i64::MAX)).unwrap();
            assert_eq!(final_points.len() as i64, POINTS);
            assert!(
                saved.len() <= final_points.len(),
                "snapshot holds more than was ever written"
            );
            assert_eq!(
                saved.as_slice(),
                &final_points[..saved.len()],
                "saved series is not a prefix of the final series ({k})"
            );
        }
        std::fs::remove_file(path).ok();
    }
}

/// Pipeline ingest races smoothing readers without losing or reordering
/// anything: after the pipeline drains, the store equals the serial
/// oracle even though readers were hammering it throughout.
#[test]
fn pipeline_ingest_under_concurrent_readers_stays_exact() {
    let mut doc = String::new();
    for t in 0..3_000i64 {
        for h in 0..4 {
            doc.push_str(&format!(
                "cpu,host=h{h} usage={} {t}\n",
                (t as f64 / 60.0).sin() + h as f64
            ));
        }
    }
    let db = ShardedDb::with_config(ShardedConfig::new(4, 64));
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for r in 0..3 {
            let db = db.clone();
            let stop = &stop;
            scope.spawn(move || {
                let key = SeriesKey::metric("cpu.usage").with_tag("host", format!("h{}", r % 4));
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    // Readers may see any prefix; they must never error in
                    // a way other than "series not there yet".
                    let _ = db.query(&key, RangeQuery::raw(0, 3_000));
                }
            });
        }
        let report = pipeline_ingest(
            &db,
            &doc,
            0,
            &IngestConfig {
                parsers: 3,
                queue_depth: 2,
                chunk_lines: 64,
                lateness: None,
                ..IngestConfig::default()
            },
        )
        .unwrap();
        stop.store(true, std::sync::atomic::Ordering::Release);
        assert!(report.is_clean());
        assert_eq!(report.points, 3_000 * 4);
    });

    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 64 });
    line_protocol::ingest(&oracle, &doc, 0).unwrap();
    assert_eq!(
        db.query_selector(&Selector::any(), full()).unwrap(),
        oracle.query_selector(&Selector::any(), full()).unwrap()
    );
}

/// Rollup keys route to their own shards; after sharded compaction the
/// rollup series are reachable through every query front-end the same
/// way.
#[test]
fn sharded_rollups_land_where_queries_find_them() {
    let db = ShardedDb::with_config(ShardedConfig::new(5, 8));
    for h in 0..8 {
        let key = SeriesKey::metric("net").with_tag("host", format!("h{h}"));
        for t in 0..50 {
            db.write(&key, DataPoint::new(t, t as f64)).unwrap();
        }
    }
    let mut c = Compactor::new(RetentionPolicy {
        raw_ttl: None,
        rollups: vec![RollupLevel {
            bucket: 10,
            aggregator: Aggregator::Mean,
            ttl: None,
        }],
    })
    .unwrap();
    let report = c.run_sharded(&db, 50).unwrap();
    assert_eq!(report.rolled_up, 8 * 5);
    for h in 0..8 {
        let base = SeriesKey::metric("net").with_tag("host", format!("h{h}"));
        let rk = rollup_key(&base, 10);
        let points = db.query(&rk, full()).unwrap();
        assert_eq!(points.len(), 5);
        // Mean of each 10-wide bucket of 0..50 is midpoint + 0.5-off.
        let expect: Vec<DataPoint> = (0..5)
            .map(|b| DataPoint::new(b * 10, (b * 10) as f64 + 4.5))
            .collect();
        assert_eq!(points, expect);
    }
}
