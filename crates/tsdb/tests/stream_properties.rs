//! Property-based tests for the streaming ingest layer: the chunker, the
//! per-shard reorder stage, and the bounded-memory pipeline.
//!
//! The central invariant mirrors `ops_properties.rs`: the streaming path
//! is observationally identical to its serial single-shard oracle. No
//! expected value below is baked in; everything is derived from the
//! oracle or replayed from the generated input (so the tests are
//! independent of the rand shim's stream, per the ROADMAP note on golden
//! values).
//!
//! * a document shuffled within lateness `L`, streamed through
//!   `ingest_reader` at arbitrary read-buffer sizes, yields a store
//!   byte-identical (every query shape, seal boundaries included) to
//!   serial sorted-oracle ingest — zero per-line write failures, with
//!   `reordered` matching an arrival-order replay;
//! * chunk-boundary totality: for arbitrary protocol-shaped junk split at
//!   random byte points (mid-escape, mid-float, mid-UTF-8 included),
//!   streaming parse of the pieces ≡ whole-document parse, and the
//!   report's line numbers still match;
//! * bounded memory: pipeline-held chunks and reorder-stage pending never
//!   exceed their configured bounds, polled live while feeding.

use std::io::Read;

use asap_tsdb::query::Aggregator;
use asap_tsdb::{
    line_protocol, pipeline_ingest, DataPoint, IngestConfig, RangeQuery, Selector, SeriesKey,
    ShardedConfig, ShardedDb, StreamIngestor, Tsdb, TsdbConfig,
};
use proptest::prelude::*;

/// A reader that hands out the underlying bytes in a scripted cycle of
/// piece sizes — read boundaries land anywhere, including mid-line and
/// mid-UTF-8 code point.
struct ChoppedReader<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: &'a [usize],
    turn: usize,
}

impl<'a> ChoppedReader<'a> {
    fn new(data: &'a [u8], sizes: &'a [usize]) -> Self {
        Self {
            data,
            pos: 0,
            sizes,
            turn: 0,
        }
    }
}

impl Read for ChoppedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let size = self.sizes[self.turn % self.sizes.len()].max(1);
        self.turn += 1;
        let n = size.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

const FIELD_NAMES: [&str; 3] = ["usage", "idle", "iowait"];

/// A generated streaming case: a per-series-ordered document, the same
/// document shuffled within the lateness bound, and the pipeline knobs.
#[derive(Debug, Clone)]
struct StreamCase {
    sorted_doc: String,
    shuffled_doc: String,
    /// Points that arrive below their series' running maximum in the
    /// shuffled order — the value `IngestReport::reordered` must take,
    /// replayed from the input rather than baked in.
    expected_reordered: usize,
    shards: usize,
    block_capacity: usize,
    ingest: IngestConfig,
    read_sizes: Vec<usize>,
}

/// Renders per-series timestamp runs into record lines (round-robin
/// across hosts, `fields` field pairs each, explicit timestamps).
fn render_lines(series: &[Vec<DataPoint>], fields: usize) -> Vec<String> {
    let mut cursors = vec![0usize; series.len()];
    let mut lines = Vec::new();
    loop {
        let mut progressed = false;
        for (h, points) in series.iter().enumerate() {
            let Some(p) = points.get(cursors[h]) else {
                continue;
            };
            cursors[h] += 1;
            progressed = true;
            let mut line = format!("cpu,host=h{h} ");
            for (f, name) in FIELD_NAMES.iter().enumerate().take(fields) {
                if f > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{name}={}", p.value + f as f64));
            }
            line.push_str(&format!(" {}", p.timestamp));
            lines.push(line);
        }
        if !progressed {
            return lines;
        }
    }
}

/// The timestamp of a rendered record line (its last token).
fn line_ts(line: &str) -> i64 {
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

/// The host tag of a rendered record line.
fn line_host(line: &str) -> &str {
    let head = line.split(' ').next().unwrap();
    head.split_once("host=").unwrap().1
}

/// Replays the shuffled arrival order and counts points arriving below
/// their series' running maximum — the reorder stage must repair exactly
/// these.
fn count_reordered(lines: &[String], fields: usize) -> usize {
    let mut max_seen: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
    let mut reordered = 0;
    for line in lines {
        let ts = line_ts(line);
        let host = line_host(line).to_owned();
        // All fields of one record share the timestamp, so each of the
        // record's `fields` series sees the same forward/backward step.
        let max = max_seen.entry(host).or_insert(i64::MIN);
        if ts < *max {
            reordered += fields;
        }
        *max = (*max).max(ts);
    }
    reordered
}

/// Strategy: per-series strictly-increasing timestamp runs, a shuffle of
/// the rendered lines displaced by strictly less than `lateness`, and
/// pipeline/storage/read knobs.
fn stream_case() -> impl Strategy<Value = StreamCase> {
    (
        (
            prop::collection::vec(
                prop::collection::vec((1i64..400, -1.0e3..1.0e3f64), 0..60),
                1..5,
            ),
            1usize..4, // fields per record
            1usize..6, // shards
        ),
        (
            1usize..40, // block capacity
            1usize..5,  // parser workers
            1usize..4,  // queue depth
            1usize..20, // chunk lines
            1i64..50,   // lateness
        ),
        (
            prop::collection::vec(0.0..1.0f64, 1..16), // per-line jitter draws
            prop::collection::vec(1usize..512, 1..8),  // reader piece sizes
        ),
    )
        .prop_map(
            |(
                (series, fields, shards),
                (block_capacity, parsers, queue_depth, chunk_lines, lateness),
                (jitters, read_sizes),
            )| {
                let series: Vec<Vec<DataPoint>> = series
                    .into_iter()
                    .map(|gaps| {
                        let mut ts = -1_000i64;
                        gaps.into_iter()
                            .map(|(gap, v)| {
                                ts += gap;
                                DataPoint::new(ts, v)
                            })
                            .collect()
                    })
                    .collect();
                let lines = render_lines(&series, fields);
                // Shuffle by sorting on ts + jitter with jitter in
                // [0, lateness): any two same-series points i before j in
                // arrival order satisfy ts_i <= ts_j + lateness - 1, so
                // the watermark never passes an in-flight point and the
                // reorder stage repairs the shuffle losslessly.
                let mut keyed: Vec<(i64, usize, String)> = lines
                    .iter()
                    .enumerate()
                    .map(|(i, line)| {
                        let jitter =
                            (jitters[i % jitters.len()] * lateness as f64) as i64;
                        (line_ts(line).saturating_add(jitter.min(lateness - 1)), i, line.clone())
                    })
                    .collect();
                keyed.sort_by_key(|&(key, i, _)| (key, i));
                let shuffled: Vec<String> =
                    keyed.into_iter().map(|(_, _, line)| line).collect();
                let expected_reordered = count_reordered(&shuffled, fields);
                StreamCase {
                    sorted_doc: lines.join("\n") + "\n",
                    shuffled_doc: shuffled.join("\n") + "\n",
                    expected_reordered,
                    shards,
                    block_capacity,
                    ingest: IngestConfig {
                        parsers,
                        queue_depth,
                        chunk_lines,
                        lateness: Some(lateness),
                        ..IngestConfig::default()
                    },
                    read_sizes,
                }
            },
        )
}

proptest! {
    /// The acceptance-criteria wall: a lateness-L-shuffled stream
    /// ingested via `ingest_reader` at arbitrary read-buffer sizes, in
    /// bounded memory, produces a store identical to the sorted serial
    /// oracle for every query shape — seal boundaries included — with
    /// zero per-line write failures and `reordered` counted.
    #[test]
    fn shuffled_stream_matches_sorted_serial_oracle(case in stream_case()) {
        let sharded =
            ShardedDb::with_config(ShardedConfig::new(case.shards, case.block_capacity));
        let reader = ChoppedReader::new(case.shuffled_doc.as_bytes(), &case.read_sizes);
        let report = sharded.ingest_reader(reader, 0, &case.ingest).unwrap();

        let oracle = Tsdb::with_config(TsdbConfig {
            block_capacity: case.block_capacity,
        });
        let serial_points = line_protocol::ingest(&oracle, &case.sorted_doc, 0).unwrap();

        // Zero per-line failures and exact repair accounting.
        prop_assert!(report.is_clean(), "{:?}", report);
        prop_assert_eq!(report.points, serial_points);
        prop_assert_eq!(report.lines, case.shuffled_doc.lines().count());
        prop_assert_eq!(report.dropped_late, 0);
        prop_assert_eq!(report.dropped_duplicate, 0);
        prop_assert_eq!(report.reordered, case.expected_reordered);

        // Every query shape equals the sorted oracle.
        let sel = Selector::metric("cpu");
        prop_assert_eq!(sharded.list_series(&sel), oracle.list_series(&sel));
        prop_assert_eq!(
            sharded.query_selector(&sel, full()).unwrap(),
            oracle.query_selector(&sel, full()).unwrap()
        );
        for key in oracle.list_series(&Selector::any()) {
            prop_assert_eq!(
                sharded.query(&key, full()).unwrap(),
                oracle.query(&key, full()).unwrap()
            );
            let bucketed = RangeQuery::bucketed(-1_000, 25_000, 43).aggregate(Aggregator::Max);
            prop_assert_eq!(
                sharded.query(&key, bucketed).unwrap(),
                oracle.query(&key, bucketed).unwrap()
            );
            prop_assert_eq!(
                sharded.summarize(&key, -250, 9_000).unwrap(),
                oracle.summarize(&key, -250, 9_000).unwrap()
            );
        }

        // Identical seal boundaries and compressed footprint once both
        // engines flush: the reorder stage released points in exactly the
        // order the serial oracle wrote them.
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        prop_assert_eq!(sharded.stats(), oracle.stats());
    }

    /// Chunk-boundary totality: streaming arbitrary protocol-shaped junk
    /// in pieces (splits land mid-escape, mid-float, mid-UTF-8) is
    /// indistinguishable from ingesting the whole document — same store,
    /// same report, same failure line numbers.
    #[test]
    fn split_streams_equal_whole_documents_on_junk(
        picks in prop::collection::vec(0usize..20, 0..300),
        read_sizes in prop::collection::vec(1usize..64, 1..10),
        parsers in 1usize..4,
        chunk_lines in 1usize..8,
        late_sel in 0i64..3,
    ) {
        const ALPHABET: [char; 20] = [
            'a', 'z', '=', ',', '.', '#', ' ', '0', '9', 'i', '\\', '\n',
            '-', '{', '}', '"', '\t', '\u{1f600}', 'e', '\r',
        ];
        let doc: String = picks.iter().map(|&i| ALPHABET[i]).collect();
        let config = IngestConfig {
            parsers,
            queue_depth: 2,
            chunk_lines,
            lateness: if late_sel == 0 { None } else { Some(late_sel * 7) },
            ..IngestConfig::default()
        };

        let streamed = ShardedDb::with_config(ShardedConfig::new(3, 8));
        let reader = ChoppedReader::new(doc.as_bytes(), &read_sizes);
        let streamed_report = streamed.ingest_reader(reader, 100, &config).unwrap();

        let whole = ShardedDb::with_config(ShardedConfig::new(3, 8));
        let whole_report = pipeline_ingest(&whole, &doc, 100, &config).unwrap();

        prop_assert_eq!(&streamed_report, &whole_report);
        prop_assert_eq!(streamed_report.lines, doc.lines().count());
        prop_assert_eq!(
            streamed.query_selector(&Selector::any(), full()).unwrap(),
            whole.query_selector(&Selector::any(), full()).unwrap()
        );
        streamed.flush().unwrap();
        whole.flush().unwrap();
        prop_assert_eq!(streamed.stats(), whole.stats());
    }
}

/// A deterministic sweep of every split point of a document that mixes
/// multi-byte UTF-8 tags, floats with exponents, escapes, and CRLF: the
/// two-piece stream must equal the whole document at each boundary.
#[test]
fn every_two_piece_split_matches_whole_document() {
    let doc = "m,t=\u{1f600} v=1.25e-3 5\r\nm,t=\u{6f22}\u{5b57} v=-7.5 6\nbad\\line v=\n\
               m v=2 7\n# comment \u{00e9}\nm v=3";
    let config = IngestConfig {
        parsers: 2,
        queue_depth: 1,
        chunk_lines: 2,
        lateness: None,
        ..IngestConfig::default()
    };
    let whole = ShardedDb::with_config(ShardedConfig::new(2, 4));
    let whole_report = pipeline_ingest(&whole, doc, 0, &config).unwrap();
    let whole_out = whole.query_selector(&Selector::any(), full()).unwrap();
    for cut in 0..=doc.len() {
        let db = ShardedDb::with_config(ShardedConfig::new(2, 4));
        let mut ing = StreamIngestor::new(&db, 0, config.clone()).unwrap();
        ing.feed(&doc.as_bytes()[..cut]);
        ing.feed(&doc.as_bytes()[cut..]);
        let report = ing.finish();
        assert_eq!(report, whole_report, "split at byte {cut}");
        assert_eq!(
            db.query_selector(&Selector::any(), full()).unwrap(),
            whole_out,
            "split at byte {cut}"
        );
    }
}

/// The bounded-memory contract, polled live: with a small queue and a
/// small reorder window, pipeline-held chunks never exceed
/// `2·(parsers + queue_depth)` and reorder-stage pending never exceeds
/// `series × lateness` points, no matter how far the byte source runs
/// ahead of the writers.
#[test]
fn pipeline_buffering_stays_within_configured_bounds() {
    const HOSTS: usize = 4;
    const POINTS: i64 = 1_500;
    const LATENESS: i64 = 8;
    let config = IngestConfig {
        parsers: 2,
        queue_depth: 1,
        chunk_lines: 4,
        lateness: Some(LATENESS),
        ..IngestConfig::default()
    };
    let chunk_bound = 2 * (config.parsers + config.queue_depth);
    let reorder_bound = HOSTS * LATENESS as usize;

    // Per-host timestamps 0..POINTS, lines shuffled by a deterministic
    // jitter pattern strictly below LATENESS.
    let mut lines: Vec<String> = Vec::new();
    for t in 0..POINTS {
        for h in 0..HOSTS {
            lines.push(format!("cpu,host=h{h} usage={} {t}", (t % 13) as f64));
        }
    }
    let mut keyed: Vec<(i64, usize, String)> = lines
        .into_iter()
        .enumerate()
        .map(|(i, line)| (line_ts(&line) + (i as i64 * 5) % LATENESS, i, line))
        .collect();
    keyed.sort_by_key(|&(key, i, _)| (key, i));
    let doc = keyed
        .into_iter()
        .map(|(_, _, line)| line)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n";

    let db = ShardedDb::with_config(ShardedConfig::new(3, 16));
    let mut ing = StreamIngestor::new(&db, 0, config).unwrap();
    let mut peak_chunks = 0usize;
    let mut peak_pending = 0usize;
    for piece in doc.as_bytes().chunks(57) {
        ing.feed(piece);
        let p = ing.progress();
        peak_chunks = peak_chunks.max(p.in_flight_chunks);
        peak_pending = peak_pending.max(p.pending_reorder);
        assert!(
            p.in_flight_chunks <= chunk_bound,
            "pipeline held {} chunks, bound is {chunk_bound}",
            p.in_flight_chunks
        );
        assert!(
            p.pending_reorder <= reorder_bound,
            "reorder stages held {} points, bound is {reorder_bound}",
            p.pending_reorder
        );
    }
    let report = ing.finish();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.points, HOSTS * POINTS as usize);
    assert_eq!(report.dropped_late, 0);
    assert!(report.reordered > 0, "the jitter produced real disorder");
    // The polls actually observed the pipeline buffering (not a pipeline
    // that drained instantly between feeds).
    assert!(peak_chunks > 0 || peak_pending > 0);

    // Bounded memory did not cost correctness.
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 16 });
    for t in 0..POINTS {
        for h in 0..HOSTS {
            let key = SeriesKey::metric("cpu.usage").with_tag("host", format!("h{h}"));
            oracle
                .write(&key, DataPoint::new(t, (t % 13) as f64))
                .unwrap();
        }
    }
    assert_eq!(
        db.query_selector(&Selector::any(), full()).unwrap(),
        oracle.query_selector(&Selector::any(), full()).unwrap()
    );
}

/// A long-running ingestor behaves like a service handle: many small
/// feeds over time, a live report that only moves forward, and a final
/// flush that loses nothing that was within the lateness window.
#[test]
fn stream_ingestor_handle_survives_many_small_feeds() {
    let config = IngestConfig {
        parsers: 2,
        queue_depth: 2,
        chunk_lines: 3,
        lateness: Some(4),
        ..IngestConfig::default()
    };
    let db = ShardedDb::with_config(ShardedConfig::new(2, 8));
    let mut ing = StreamIngestor::new(&db, 0, config).unwrap();
    let mut last = ing.progress();
    // Three sessions' worth of lines, fed byte by byte with polls in
    // between — including a final batch that stays entirely inside the
    // lateness window until finish().
    for batch in ["m v=1 1\nm v=3 3\nm v=2 2\n", "m v=5 5\nm v=4 4\n", "m v=7 7\nm v=6 6\n"] {
        for b in batch.as_bytes() {
            ing.feed(std::slice::from_ref(b));
        }
        let now = ing.progress();
        assert!(now.lines >= last.lines, "line counter regressed");
        assert!(now.points >= last.points, "point counter regressed");
        last = now;
    }
    let report = ing.finish();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.points, 7);
    assert_eq!(report.reordered, 3, "2, 4, and 6 arrived late");
    let got = db.query(&SeriesKey::metric("m.v"), full()).unwrap();
    let want: Vec<_> = (1..=7).map(|t| DataPoint::new(t, t as f64)).collect();
    assert_eq!(got, want);
}
