//! Property-based tests for the sharded engine.
//!
//! The central invariant: a [`ShardedDb`] is observationally identical to
//! a single-shard [`Tsdb`] holding the same points — for every query
//! shape, under any cross-thread ingest interleaving, at any shard count
//! and block capacity. No expected value below is baked in; everything is
//! derived from the single-shard oracle (so the tests are independent of
//! the rand shim's stream, per the ROADMAP note on golden values).

use asap_core::Asap;
use asap_tsdb::query::Aggregator;
use asap_tsdb::{
    smooth_query, smooth_query_selector, DataPoint, RangeQuery, Selector, SeriesKey,
    ShardedConfig, ShardedDb, Tsdb, TsdbConfig,
};
use proptest::prelude::*;

fn host(i: usize) -> SeriesKey {
    SeriesKey::metric("cpu").with_tag("host", format!("h{i}"))
}

/// Strategy: per-series strictly-increasing timestamp runs with finite
/// values, plus a shard count and a (small) block capacity so seals land
/// in different places on different shards.
fn ingest_case(
    max_series: usize,
    max_len: usize,
) -> impl Strategy<Value = (Vec<Vec<DataPoint>>, usize, usize)> {
    (
        prop::collection::vec(
            prop::collection::vec((1i64..500, -1.0e3..1.0e3f64), 0..max_len),
            1..max_series,
        ),
        1usize..6,
        1usize..40,
    )
        .prop_map(|(series, shards, block_capacity)| {
            let series = series
                .into_iter()
                .map(|gaps| {
                    let mut ts = -2_000i64;
                    gaps.into_iter()
                        .map(|(gap, v)| {
                            ts += gap;
                            DataPoint::new(ts, v)
                        })
                        .collect()
                })
                .collect();
            (series, shards, block_capacity)
        })
}

/// Ingests each series from its own thread (writers race on the sharded
/// map) and serially into the oracle.
fn build_twin(
    series: &[Vec<DataPoint>],
    shards: usize,
    block_capacity: usize,
) -> (ShardedDb, Tsdb) {
    let sharded = ShardedDb::with_config(ShardedConfig::new(shards, block_capacity));
    std::thread::scope(|scope| {
        for (i, points) in series.iter().enumerate() {
            let sharded = &sharded;
            scope.spawn(move || {
                for &p in points {
                    sharded.write(&host(i), p).unwrap();
                }
            });
        }
    });
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity });
    for (i, points) in series.iter().enumerate() {
        for &p in points {
            oracle.write(&host(i), p).unwrap();
        }
    }
    (sharded, oracle)
}

proptest! {
    #[test]
    fn sharded_matches_single_shard_oracle(case in ingest_case(5, 120)) {
        let (series, shards, block_capacity) = case;
        let (sharded, oracle) = build_twin(&series, shards, block_capacity);

        prop_assert_eq!(sharded.series_count(), oracle.series_count());
        let sel = Selector::metric("cpu");
        prop_assert_eq!(sharded.list_series(&sel), oracle.list_series(&sel));

        let full = RangeQuery::raw(i64::MIN, i64::MAX);
        for (i, points) in series.iter().enumerate() {
            if points.is_empty() {
                continue;
            }
            let key = host(i);
            prop_assert_eq!(
                sharded.query(&key, full).unwrap(),
                oracle.query(&key, full).unwrap()
            );
            // Partial range + bucketed aggregation over the same grid.
            let q = RangeQuery::bucketed(-2_000, 30_000, 37).aggregate(Aggregator::Mean);
            prop_assert_eq!(sharded.query(&key, q).unwrap(), oracle.query(&key, q).unwrap());
            prop_assert_eq!(
                sharded.summarize(&key, -500, 10_000).unwrap(),
                oracle.summarize(&key, -500, 10_000).unwrap()
            );
        }
        prop_assert_eq!(
            sharded.query_selector(&sel, full).unwrap(),
            oracle.query_selector(&sel, full).unwrap()
        );

        // Occupancy statistics agree point-for-point and block-for-block
        // once both engines seal their memtables.
        sharded.flush().unwrap();
        oracle.flush().unwrap();
        prop_assert_eq!(sharded.stats(), oracle.stats());

        // Retention agrees too (cutoff in the middle of the data).
        prop_assert_eq!(sharded.evict_before(500), oracle.evict_before(500));
        prop_assert_eq!(
            sharded.query_selector(&sel, full).unwrap(),
            oracle.query_selector(&sel, full).unwrap()
        );
    }

    #[test]
    fn gorilla_blocks_survive_shard_boundary_splits(case in ingest_case(4, 90)) {
        let (series, shards, block_capacity) = case;
        let (sharded, oracle) = build_twin(&series, shards, block_capacity);
        sharded.flush().unwrap();
        oracle.flush().unwrap();

        for (i, points) in series.iter().enumerate() {
            if points.is_empty() {
                continue;
            }
            let key = host(i);
            let blocks = sharded.export_blocks(&key).unwrap();
            let oracle_blocks = oracle.export_blocks(&key).unwrap();
            prop_assert_eq!(blocks.len(), oracle_blocks.len(), "seal boundaries agree");

            // Every sealed block decodes bit-exactly, and their
            // concatenation reproduces the written series in order —
            // wherever the shard's seals happened to fall.
            let mut decoded = Vec::new();
            for (block, oracle_block) in blocks.iter().zip(&oracle_blocks) {
                let pts = block.decode_range(i64::MIN, i64::MAX).unwrap();
                prop_assert_eq!(block.len(), pts.len());
                prop_assert_eq!(&pts, &oracle_block.decode_range(i64::MIN, i64::MAX).unwrap());
                decoded.extend(pts);
            }
            prop_assert_eq!(&decoded, points, "round trip through sealed blocks");

            // A rebalancing migration to a different shard count keeps the
            // same bytes queryable.
            let migrated_shards = (shards % 5) + 1;
            let migrated = ShardedDb::with_config(ShardedConfig::new(migrated_shards, block_capacity));
            migrated.import_blocks(&key, blocks).unwrap();
            prop_assert_eq!(
                migrated.query(&key, RangeQuery::raw(i64::MIN, i64::MAX)).unwrap(),
                decoded
            );
        }
    }

    #[test]
    fn sharded_smoothing_equals_oracle(
        case in ingest_case(3, 60),
        period in 8.0..120.0f64,
    ) {
        // Smoothing needs a reasonably long equi-spaced grid; reuse the
        // generated case for shard/capacity diversity but lay down a
        // dense, periodic series per key so ASAP has something to choose.
        let (series, shards, block_capacity) = case;
        let sharded = ShardedDb::with_config(ShardedConfig::new(shards, block_capacity));
        let oracle = Tsdb::with_config(TsdbConfig { block_capacity });
        for (i, _) in series.iter().enumerate() {
            let key = host(i);
            for t in 0..800i64 {
                let v = (std::f64::consts::TAU * t as f64 / period).sin()
                    + 0.3 * if t % 2 == 0 { 1.0 } else { -1.0 };
                let p = DataPoint::new(t * 5, v);
                sharded.write(&key, p).unwrap();
                oracle.write(&key, p).unwrap();
            }
        }
        let asap = Asap::builder().resolution(100).build();
        for (i, _) in series.iter().enumerate() {
            let key = host(i);
            prop_assert_eq!(
                smooth_query(&sharded, &key, &asap, 0, 4_000, 5),
                smooth_query(&oracle, &key, &asap, 0, 4_000, 5)
            );
        }
        // The shard-parallel fan-out equals the serial oracle pipeline,
        // frames and order alike.
        let sel = Selector::metric("cpu");
        prop_assert_eq!(
            sharded.smooth_query_selector(&sel, &asap, 0, 4_000, 5),
            smooth_query_selector(&oracle, &sel, &asap, 0, 4_000, 5)
        );
    }
}
