//! Property-based tests for the storage substrate.
//!
//! Invariants checked:
//! * Gorilla compression is bit-lossless for arbitrary ordered `(i64, f64)`
//!   streams (including negative zero and subnormals);
//! * a [`SeriesStore`] scan equals the brute-force filter of the written
//!   points regardless of where block seals fall;
//! * bucketed mean aggregation equals the brute-force per-bucket mean;
//! * fill policies produce complete grids with the declared semantics.

use asap_tsdb::query::{Aggregator, FillPolicy, RangeQuery};
use asap_tsdb::series::SeriesStore;
use asap_tsdb::{DataPoint, GorillaEncoder};
use proptest::prelude::*;

/// Strategy: a strictly-increasing timestamp sequence with finite values.
fn ordered_points(max_len: usize) -> impl Strategy<Value = Vec<DataPoint>> {
    prop::collection::vec(
        (
            1i64..10_000,                   // positive gap to the previous point
            prop::num::f64::NORMAL | prop::num::f64::SUBNORMAL | prop::num::f64::ZERO,
        ),
        0..max_len,
    )
    .prop_map(|gaps| {
        let mut ts = -5_000i64; // exercise negative timestamps too
        gaps.into_iter()
            .map(|(gap, v)| {
                ts += gap;
                DataPoint::new(ts, v)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn gorilla_round_trips_bit_exactly(points in ordered_points(300)) {
        let mut enc = GorillaEncoder::new();
        for &p in &points {
            enc.append(p);
        }
        let chunk = enc.finish();
        let decoded = chunk.decode().unwrap();
        prop_assert_eq!(decoded.len(), points.len());
        for (a, b) in decoded.iter().zip(&points) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn store_scan_equals_brute_force(
        points in ordered_points(300),
        block_capacity in 1usize..64,
        window in (0i64..20_000).prop_flat_map(|a| (Just(a - 6_000), a - 6_000..15_000)),
    ) {
        let (start, end) = window;
        let mut store = SeriesStore::new(block_capacity);
        for &p in &points {
            store.append(p).unwrap();
        }
        let got = store.scan(start, end).unwrap();
        let want: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| p.timestamp >= start && p.timestamp < end)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn store_len_and_eviction_conserve_points(
        points in ordered_points(300),
        block_capacity in 1usize..32,
        cutoff in -6_000i64..20_000,
    ) {
        let mut store = SeriesStore::new(block_capacity);
        for &p in &points {
            store.append(p).unwrap();
        }
        prop_assert_eq!(store.len(), points.len());
        store.seal_active().unwrap();
        let evicted = store.evict_before(cutoff);
        prop_assert_eq!(evicted + store.len(), points.len());
        // Everything surviving is visible, and nothing before any sealed
        // block's end can have been lost within retained blocks.
        let survivors = store.scan(i64::MIN, i64::MAX).unwrap();
        prop_assert_eq!(survivors.len(), store.len());
        // Block-granular retention never evicts a point at/after cutoff.
        for p in &points {
            if p.timestamp >= cutoff {
                prop_assert!(survivors.contains(p));
            }
        }
    }

    #[test]
    fn bucketed_mean_equals_brute_force(
        points in ordered_points(200),
        bucket in 1i64..500,
    ) {
        let start = -5_000i64;
        let end = 15_000i64;
        let q = RangeQuery::bucketed(start, end, bucket);
        let inside: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| p.timestamp >= start && p.timestamp < end)
            .collect();
        let got = q.shape(&inside).unwrap();
        for dp in &got {
            let lo = dp.timestamp;
            let hi = lo + bucket;
            let bucket_vals: Vec<f64> = inside
                .iter()
                .filter(|p| p.timestamp >= lo && p.timestamp < hi)
                .map(|p| p.value)
                .collect();
            prop_assert!(!bucket_vals.is_empty(), "emitted bucket must be non-empty");
            let mean = bucket_vals.iter().sum::<f64>() / bucket_vals.len() as f64;
            let tol = 1e-9 * mean.abs().max(1.0);
            prop_assert!((dp.value - mean).abs() <= tol);
        }
        // Skip fill: one output bucket per non-empty input bucket.
        let distinct: std::collections::BTreeSet<i64> = inside
            .iter()
            .map(|p| (p.timestamp - start).div_euclid(bucket))
            .collect();
        prop_assert_eq!(got.len(), distinct.len());
    }

    #[test]
    fn total_fill_policies_produce_complete_grids(
        points in ordered_points(200),
        bucket in 1i64..500,
    ) {
        let start = -5_000i64;
        let end = 15_000i64;
        let inside: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| p.timestamp >= start && p.timestamp < end)
            .collect();
        let n_buckets = ((end - start) as u64).div_ceil(bucket as u64) as usize;
        for fill in [FillPolicy::Previous, FillPolicy::Linear, FillPolicy::Constant(0.0)] {
            let got = RangeQuery::bucketed(start, end, bucket)
                .fill(fill)
                .shape(&inside)
                .unwrap();
            if inside.is_empty() && !matches!(fill, FillPolicy::Constant(_)) {
                prop_assert!(got.is_empty());
            } else {
                prop_assert_eq!(got.len(), n_buckets, "{:?}", fill);
                // Grid timestamps are exactly start + i*bucket.
                for (i, dp) in got.iter().enumerate() {
                    prop_assert_eq!(dp.timestamp, start + i as i64 * bucket);
                    prop_assert!(dp.value.is_finite());
                }
            }
        }
    }

    #[test]
    fn count_aggregation_conserves_points(
        points in ordered_points(200),
        bucket in 1i64..500,
    ) {
        let start = -5_000i64;
        let end = 15_000i64;
        let inside: Vec<DataPoint> = points
            .iter()
            .copied()
            .filter(|p| p.timestamp >= start && p.timestamp < end)
            .collect();
        let got = RangeQuery::bucketed(start, end, bucket)
            .aggregate(Aggregator::Count)
            .shape(&inside)
            .unwrap();
        let total: f64 = got.iter().map(|p| p.value).sum();
        prop_assert_eq!(total as usize, inside.len());
    }
}

proptest! {
    /// Any stream whose disorder is bounded by the buffer's allowed
    /// lateness is fully repaired: every unique point lands, in order.
    #[test]
    fn reorder_buffer_repairs_bounded_disorder(
        jitters in prop::collection::vec(0i64..8, 1..200),
        lateness in 8i64..64,
    ) {
        use asap_tsdb::{ReorderBuffer, SeriesKey, Tsdb};
        // Slot i nominally sits at 10*i; each point arrives displaced
        // backwards by jitter < 8 <= lateness, so nothing is ever dropped.
        let db = Tsdb::new();
        let mut rb = ReorderBuffer::new(db.clone(), 10 * lateness).unwrap();
        let key = SeriesKey::metric("m");
        let mut expect: Vec<i64> = Vec::new();
        // Emit in arrival order: slot i+jitter's point arrives at step i.
        let mut arrivals: Vec<(usize, i64)> = jitters
            .iter()
            .enumerate()
            .map(|(i, &j)| (i, 10 * i as i64 + j))
            .collect();
        // Bounded shuffle: swap adjacent pairs deterministically.
        for w in (0..arrivals.len().saturating_sub(1)).step_by(2) {
            arrivals.swap(w, w + 1);
        }
        for &(_, ts) in &arrivals {
            let _ = rb.offer(&key, asap_tsdb::DataPoint::new(ts, 1.0)).unwrap();
            if !expect.contains(&ts) {
                expect.push(ts);
            }
        }
        rb.flush().unwrap();
        expect.sort_unstable();
        let got: Vec<i64> = db
            .query(&key, asap_tsdb::RangeQuery::raw(i64::MIN + 1, i64::MAX))
            .map(|pts| pts.iter().map(|p| p.timestamp).collect())
            .unwrap_or_default();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(rb.stats().dropped_late, 0);
    }
}

proptest! {
    /// Block-summary fast-path aggregation equals the brute-force scan for
    /// any range and any block-seal placement.
    #[test]
    fn summarize_equals_brute_force(
        points in ordered_points(300),
        block_capacity in 1usize..48,
        window in (0i64..20_000).prop_flat_map(|a| (Just(a - 6_000), a - 6_000..15_000)),
    ) {
        let (start, end) = window;
        let mut store = SeriesStore::new(block_capacity);
        for &p in &points {
            store.append(p).unwrap();
        }
        let scan = store.scan(start, end).unwrap();
        match store.summarize(start, end).unwrap() {
            None => prop_assert!(scan.is_empty()),
            Some(s) => {
                prop_assert_eq!(s.count, scan.len());
                let min = scan.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
                let max = scan.iter().map(|p| p.value).fold(f64::NEG_INFINITY, f64::max);
                prop_assert_eq!(s.min.to_bits(), min.to_bits());
                prop_assert_eq!(s.max.to_bits(), max.to_bits());
                let sum: f64 = scan.iter().map(|p| p.value).sum();
                let tol = 1e-9 * sum.abs().max(1.0);
                prop_assert!((s.sum - sum).abs() <= tol);
            }
        }
    }
}
