//! Fault-injection wall for the write-ahead log: recovery from a
//! damaged WAL is observationally identical to a serial oracle built
//! from the log's surviving clean prefix — for *every* crash point.
//!
//! The harness simulates crashes the brute-force way:
//!
//! * truncate the log at **every byte offset** — a torn tail must drop
//!   cleanly at the last record boundary, never fail, never resurrect a
//!   partial record;
//! * flip **every bit position's byte** — corruption must be caught by
//!   the CRC (or the header plausibility checks) and confined to the
//!   file tail, never applied, never fatal;
//! * kill between every step of the checkpoint sequence
//!   (rotate → snapshot → discard) — each intermediate state must
//!   recover to the full store, with snapshot overlap skipped rather
//!   than double-applied;
//! * feed garbage, empty, and half-header files — replay reports them
//!   and moves on;
//! * (property) kill a shuffled-lateness `StreamIngestor` run at an
//!   arbitrary per-shard record boundary — replay must equal the prefix
//!   oracle of exactly the records that survived;
//! * kill an **incremental checkpoint chain** after every step
//!   (rotate, delta write, base write, manifest commit, old-chain
//!   removal, discard — including partial discards and removals) —
//!   recovery from chain + WAL tail must equal the full oracle;
//! * fuzz the chain's on-disk index — garbage manifest (every-byte
//!   bit-flip sweep under `CRASH_EXTENDED=1`, a stride otherwise),
//!   manifest referencing a missing delta, delta from a foreign chain —
//!   folding must degrade to the newest loadable prefix, never panic,
//!   and never lose acknowledged data while the WAL tail survives;
//! * checkpoint repeatedly **under a live concurrent ingest pipeline**
//!   and recover ≡ the live store.
//!
//! No expected value is baked in (see the ROADMAP note on golden
//! values): every assertion compares the recovered store against an
//! oracle replayed from the same surviving records, plus the structural
//! claim that surviving records are a *prefix* of what was appended —
//! the non-circular half of the argument.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use asap_tsdb::query::Aggregator;
use asap_tsdb::wal::{read_records, record_len, replay, wal_files};
use asap_tsdb::{
    load_chain_with_report, recover_sharded, ChainStep, CheckpointChain, DataPoint, FsyncPolicy,
    IngestConfig, RangeQuery, Selector, SeriesKey, ShardedConfig, ShardedDb, StreamIngestor, Tsdb,
    TsdbConfig, TsdbError, Wal, WalRecord,
};
use proptest::prelude::*;

/// A fresh scratch directory, unique per call even across threads.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "asap-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

/// The serial oracle: the surviving records applied in replay order to a
/// single-shard store, snapshot overlap skipped exactly as `replay` does.
fn oracle_of(records: &[WalRecord], block_capacity: usize) -> Tsdb {
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity });
    for r in records {
        match oracle.write(&r.key, r.point) {
            Ok(()) | Err(TsdbError::OutOfOrder { .. }) => {}
            Err(e) => panic!("oracle write failed: {e:?}"),
        }
    }
    oracle
}

/// Recovered state must equal the oracle for every query shape: the
/// series catalogue, raw ranges, bucketed aggregation, and summaries.
/// (Block partitioning is intentionally not compared: snapshot import
/// and live writes may seal at different boundaries.)
fn assert_equiv(recovered: &ShardedDb, oracle: &Tsdb) {
    let any = Selector::any();
    assert_eq!(
        recovered.list_series(&any),
        oracle.list_series(&any),
        "series catalogue diverges"
    );
    let sel = Selector::metric("cpu");
    assert_eq!(
        recovered.query_selector(&sel, full()).unwrap(),
        oracle.query_selector(&sel, full()).unwrap(),
        "selector query diverges"
    );
    for key in oracle.list_series(&any) {
        assert_eq!(
            recovered.query(&key, full()).unwrap(),
            oracle.query(&key, full()).unwrap(),
            "raw range diverges for {key}"
        );
        let bucketed = RangeQuery::bucketed(-1_000, 30_000, 43).aggregate(Aggregator::Max);
        assert_eq!(
            recovered.query(&key, bucketed).unwrap(),
            oracle.query(&key, bucketed).unwrap(),
            "bucketed aggregation diverges for {key}"
        );
        assert_eq!(
            recovered.summarize(&key, -500, 20_000).unwrap(),
            oracle.summarize(&key, -500, 20_000).unwrap(),
            "summary diverges for {key}"
        );
    }
}

/// Builds one single-shard WAL of interleaved multi-series appends and
/// returns its raw bytes plus the decoded record sequence.
fn build_single_shard_log(dir: &Path) -> (Vec<u8>, Vec<WalRecord>) {
    let keys = [
        SeriesKey::metric("cpu").with_tag("host", "a"),
        SeriesKey::metric("cpu").with_tag("host", "b").with_tag("dc", "west"),
        SeriesKey::metric("mem"),
    ];
    let wal = Wal::open(dir, 1, FsyncPolicy::EveryN(1 << 20)).unwrap();
    for t in 0..12i64 {
        for (s, key) in keys.iter().enumerate() {
            let point = DataPoint::new(t * 5 + s as i64, (s as f64 * 100.0 + t as f64) * 1.25);
            wal.append(0, key, point).unwrap();
        }
    }
    wal.seal().unwrap();
    let files = wal_files(dir).unwrap();
    assert_eq!(files.len(), 1);
    let bytes = fs::read(&files[0].path).unwrap();
    let segment = read_records(&files[0].path).unwrap();
    assert!(segment.damage.is_none());
    assert_eq!(segment.records.len(), 36);
    (bytes, segment.records)
}

/// The byte offsets at which a record ends — the only truncation points
/// that leave no damage, per the documented format.
fn record_boundaries(records: &[WalRecord]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    for r in records {
        pos += record_len(&r.key);
        offsets.push(pos);
    }
    offsets
}

/// Tentpole sweep #1: truncate the log at **every** byte offset. The
/// clean prefix must decode to a prefix of the appended sequence, replay
/// must never fail, and the recovered store must equal the prefix
/// oracle. Damage is reported exactly when the cut misses a record
/// boundary.
#[test]
fn truncation_at_every_byte_recovers_the_clean_prefix() {
    let src = temp_dir("trunc-src");
    let (bytes, full_records) = build_single_shard_log(&src);
    let boundaries = record_boundaries(&full_records);
    assert_eq!(*boundaries.last().unwrap(), bytes.len());

    let crash = temp_dir("trunc-crash");
    let log = crash.join("wal-0000-00000001.log");
    for cut in 0..=bytes.len() {
        fs::write(&log, &bytes[..cut]).unwrap();

        let segment = read_records(&log).unwrap();
        let n = segment.records.len();
        assert_eq!(
            segment.records,
            full_records[..n],
            "cut at {cut}: survivors are not a prefix of the appended sequence"
        );
        assert_eq!(
            segment.damage.is_none(),
            boundaries.contains(&cut),
            "cut at {cut}: damage report disagrees with record boundaries ({:?})",
            segment.damage
        );

        let db = ShardedDb::with_config(ShardedConfig::new(1, 7));
        let report = replay(&crash, &db).unwrap();
        assert_eq!(report.files, 1);
        assert_eq!(report.applied, n as u64, "cut at {cut}");
        assert_eq!(report.skipped, 0, "cut at {cut}");
        assert_eq!(report.damaged, usize::from(segment.damage.is_some()), "cut at {cut}");
        assert_equiv(&db, &oracle_of(&segment.records, 7));
    }
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash).unwrap();
}

/// Tentpole sweep #2: flip one bit in **every** byte of the log. The
/// flip must never be applied as data (CRC/plausibility confines it to
/// the tail), never be fatal, and the survivors must still be a prefix
/// of the appended sequence — the flipped record itself always dies.
#[test]
fn single_bit_flips_are_confined_and_never_fatal() {
    let src = temp_dir("flip-src");
    let (bytes, full_records) = build_single_shard_log(&src);

    let crash = temp_dir("flip-crash");
    let log = crash.join("wal-0000-00000001.log");
    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 1 << (i % 8);
        fs::write(&log, &flipped).unwrap();

        let segment = read_records(&log).unwrap();
        let n = segment.records.len();
        assert!(
            segment.damage.is_some(),
            "flip at byte {i} went undetected"
        );
        assert!(n < full_records.len(), "flip at byte {i} lost no record");
        assert_eq!(
            segment.records,
            full_records[..n],
            "flip at byte {i}: survivors are not a prefix"
        );

        let db = ShardedDb::with_config(ShardedConfig::new(1, 16));
        let report = replay(&crash, &db).unwrap();
        assert_eq!(report.applied, n as u64, "flip at byte {i}");
        assert_eq!(report.damaged, 1, "flip at byte {i}");
        assert_equiv(&db, &oracle_of(&segment.records, 16));
    }
    fs::remove_dir_all(&src).unwrap();
    fs::remove_dir_all(&crash).unwrap();
}

/// Writes `batch` through the WAL the way the ingest sink does: store
/// write and log append under the shard's log lock, one fixed shard per
/// series so per-series order is preserved within a generation.
fn apply_batch(db: &ShardedDb, wal: &Wal, batch: &[(usize, SeriesKey, DataPoint)]) {
    for (series, key, point) in batch {
        let shard = series % wal.shard_count();
        wal.log_applied(shard, key, *point, || db.write(key, *point)).unwrap();
    }
}

/// Rows of `(series index, key, point)` with per-series ascending
/// timestamps starting at `t0`.
fn batch(keys: &[SeriesKey], t0: i64, count: i64) -> Vec<(usize, SeriesKey, DataPoint)> {
    let mut rows = Vec::new();
    for t in 0..count {
        for (s, key) in keys.iter().enumerate() {
            rows.push((
                s,
                key.clone(),
                DataPoint::new(t0 + t * 3 + s as i64, (t0 as f64 + t as f64) / (s + 1) as f64),
            ));
        }
    }
    rows
}

fn oracle_of_batches(batches: &[&[(usize, SeriesKey, DataPoint)]]) -> Tsdb {
    let records: Vec<WalRecord> = batches
        .iter()
        .flat_map(|b| b.iter())
        .map(|(_, key, point)| WalRecord {
            key: key.clone(),
            point: *point,
        })
        .collect();
    oracle_of(&records, 32)
}

/// Tentpole sweep #3: kill between every step of the checkpoint
/// sequence (rotate → snapshot save → discard). Each intermediate
/// on-disk state must recover to the complete store; snapshot overlap is
/// skipped, never double-applied, and recovery also survives restarting
/// with a *different* shard count (replay re-routes by the store hash).
#[test]
fn a_kill_between_any_checkpoint_step_recovers_the_full_store() {
    let keys = [
        SeriesKey::metric("cpu").with_tag("host", "a"),
        SeriesKey::metric("cpu").with_tag("host", "b"),
        SeriesKey::metric("disk").with_tag("dev", "sda"),
    ];
    let a = batch(&keys, 0, 10);
    let b = batch(&keys, 1_000, 8);
    let c = batch(&keys, 2_000, 6);

    // Kill after rotate, before the snapshot save: both generations are
    // on disk, there is no snapshot, and replay must apply everything.
    {
        let root = temp_dir("kill-after-rotate");
        let wal_dir = root.join("wal");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        apply_batch(&db, &wal, &a);
        wal.rotate().unwrap();
        apply_batch(&db, &wal, &b);
        drop((db, wal)); // crash: no seal, no snapshot

        let (recovered, report) =
            recover_sharded(None, Some(&wal_dir), ShardedConfig::new(2, 32)).unwrap();
        assert_eq!(report.applied, (a.len() + b.len()) as u64);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.damaged, 0);
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b]));
        fs::remove_dir_all(&root).unwrap();
    }

    // Kill after the snapshot save, before discard: the snapshot already
    // covers generation 1, whose records replay as skips — never as
    // duplicates — while the post-rotate generation still applies.
    {
        let root = temp_dir("kill-after-snapshot");
        let wal_dir = root.join("wal");
        let snap = root.join("snap.bin");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        apply_batch(&db, &wal, &a);
        wal.rotate().unwrap();
        apply_batch(&db, &wal, &b);
        db.save(&snap).unwrap();
        drop((db, wal)); // crash: discard_before never ran

        let (recovered, report) =
            recover_sharded(Some(&snap), Some(&wal_dir), ShardedConfig::new(2, 32)).unwrap();
        assert_eq!(report.skipped, (a.len() + b.len()) as u64);
        assert_eq!(report.applied, 0);
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b]));
        fs::remove_dir_all(&root).unwrap();
    }

    // Full checkpoint, then more writes, then a kill: snapshot plus the
    // WAL tail is a complete recovery set — here recovered into a store
    // with a different shard count than the one that wrote the log.
    {
        let root = temp_dir("kill-after-checkpoint");
        let wal_dir = root.join("wal");
        let snap = root.join("snap.bin");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        apply_batch(&db, &wal, &a);
        let boundary = asap_tsdb::checkpoint_sharded(&db, &snap, &wal).unwrap();
        assert!(wal_files(&wal_dir).unwrap().iter().all(|f| f.generation >= boundary));
        apply_batch(&db, &wal, &c);
        drop((db, wal)); // crash after the tail was written

        let (recovered, report) =
            recover_sharded(Some(&snap), Some(&wal_dir), ShardedConfig::new(5, 32)).unwrap();
        assert_eq!(report.applied, c.len() as u64);
        assert_eq!(report.skipped, 0);
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &c]));
        fs::remove_dir_all(&root).unwrap();
    }
}

/// Garbage in the log directory — empty files, half headers, byte noise,
/// and a clean prefix followed by junk — is reported and dropped, never
/// fatal. Files whose names aren't WAL-shaped are invisible to replay.
#[test]
fn garbage_and_foreign_files_are_reported_never_fatal() {
    let dir = temp_dir("garbage");
    let key = SeriesKey::metric("cpu").with_tag("host", "a");
    // One clean record followed by noise: the record survives.
    let mut mixed = asap_tsdb::wal::encode_record(&key, DataPoint::new(7, 1.5));
    mixed.extend_from_slice(b"not a wal record at all, sorry");
    fs::write(dir.join("wal-0000-00000001.log"), &mixed).unwrap();
    // Empty file: clean, zero records.
    fs::write(dir.join("wal-0001-00000001.log"), b"").unwrap();
    // Half a header: torn, zero records.
    fs::write(dir.join("wal-0000-00000002.log"), [1u8, 2, 3]).unwrap();
    // Foreign names must be ignored entirely.
    fs::write(dir.join("snap.bin"), b"whatever").unwrap();
    fs::write(dir.join("wal-a-1.log"), b"junk").unwrap();

    let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
    let report = replay(&dir, &db).unwrap();
    assert_eq!(report.files, 3);
    assert_eq!(report.applied, 1);
    assert_eq!(report.skipped, 0);
    assert_eq!(report.damaged, 2);
    assert_eq!(db.query(&key, full()).unwrap(), vec![DataPoint::new(7, 1.5)]);
    // The foreign files were not consumed or deleted.
    assert!(dir.join("snap.bin").exists() && dir.join("wal-a-1.log").exists());
    fs::remove_dir_all(&dir).unwrap();
}

/// Whether the exhaustive (slower) sweeps run; CI's release property job
/// sets `CRASH_EXTENDED=1`, local runs use a stride.
fn extended() -> bool {
    std::env::var_os("CRASH_EXTENDED").is_some()
}

fn chain_keys() -> [SeriesKey; 3] {
    [
        SeriesKey::metric("cpu").with_tag("host", "a"),
        SeriesKey::metric("cpu").with_tag("host", "b"),
        SeriesKey::metric("disk").with_tag("dev", "sda"),
    ]
}

/// Tentpole sweep #4: kill an incremental checkpoint chain after every
/// step — on both the delta path and the re-base path — plus the
/// partial-progress states a kill can leave *inside* a step (some
/// covered generations discarded, some old-chain files removed). Every
/// intermediate on-disk state must recover, from chain + WAL tail, to
/// the complete store.
#[test]
fn a_kill_between_any_incremental_chain_step_recovers_the_full_store() {
    let keys = chain_keys();
    let a = batch(&keys, 0, 10);
    let b = batch(&keys, 1_000, 8);
    let c = batch(&keys, 2_000, 6);

    // Delta-path kills: the first checkpoint completes (fresh base),
    // more writes land, then the incremental checkpoint dies after each
    // of its steps in turn.
    for step in [
        ChainStep::Rotated,
        ChainStep::DeltaWritten,
        ChainStep::ManifestWritten,
        ChainStep::Discarded,
    ] {
        let root = temp_dir("chain-kill-delta");
        let wal_dir = root.join("wal");
        let chain_dir = root.join("chain");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        let mut chain = CheckpointChain::open(&chain_dir, 4).unwrap();
        apply_batch(&db, &wal, &a);
        let first = chain.checkpoint(&db, Some(&wal)).unwrap();
        assert!(first.rebased && first.completed, "{step:?}");
        apply_batch(&db, &wal, &b);
        let killed = chain.checkpoint_until(&db, Some(&wal), Some(step)).unwrap();
        assert!(!killed.completed, "{step:?}");
        drop((db, wal, chain)); // the kill

        let (recovered, report) =
            recover_sharded(Some(&chain_dir), Some(&wal_dir), ShardedConfig::new(3, 32)).unwrap();
        assert_eq!(report.damaged, 0, "{step:?}");
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b]));
        fs::remove_dir_all(&root).unwrap();
    }

    // Re-base-path kills: depth 1 forces the third checkpoint to
    // re-base under a fresh chain id; it dies after each step.
    for step in [
        ChainStep::Rotated,
        ChainStep::BaseWritten,
        ChainStep::ManifestWritten,
        ChainStep::OldChainRemoved,
        ChainStep::Discarded,
    ] {
        let root = temp_dir("chain-kill-rebase");
        let wal_dir = root.join("wal");
        let chain_dir = root.join("chain");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        let mut chain = CheckpointChain::open(&chain_dir, 1).unwrap();
        apply_batch(&db, &wal, &a);
        chain.checkpoint(&db, Some(&wal)).unwrap(); // base
        apply_batch(&db, &wal, &b);
        chain.checkpoint(&db, Some(&wal)).unwrap(); // delta: depth reached
        apply_batch(&db, &wal, &c);
        let killed = chain.checkpoint_until(&db, Some(&wal), Some(step)).unwrap();
        assert!(!killed.completed, "{step:?}");
        assert!(killed.rebased || step == ChainStep::Rotated, "{step:?}");
        drop((db, wal, chain)); // the kill

        let (recovered, report) =
            recover_sharded(Some(&chain_dir), Some(&wal_dir), ShardedConfig::new(2, 32)).unwrap();
        assert_eq!(report.damaged, 0, "{step:?}");
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b, &c]));
        fs::remove_dir_all(&root).unwrap();
    }

    // Mid-discard: the manifest committed, then the kill landed partway
    // through deleting covered generations — simulate by removing a
    // strict subset of the covered files by hand.
    {
        let root = temp_dir("chain-kill-mid-discard");
        let wal_dir = root.join("wal");
        let chain_dir = root.join("chain");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        let mut chain = CheckpointChain::open(&chain_dir, 4).unwrap();
        apply_batch(&db, &wal, &a);
        chain.checkpoint(&db, Some(&wal)).unwrap();
        apply_batch(&db, &wal, &b);
        let killed = chain
            .checkpoint_until(&db, Some(&wal), Some(ChainStep::ManifestWritten))
            .unwrap();
        let boundary = killed.boundary.unwrap();
        drop((db, wal, chain));
        let covered: Vec<_> = wal_files(&wal_dir)
            .unwrap()
            .into_iter()
            .filter(|f| f.generation < boundary)
            .collect();
        assert!(covered.len() >= 2, "need a strict subset to delete");
        fs::remove_file(&covered[0].path).unwrap(); // partial discard

        let (recovered, _) =
            recover_sharded(Some(&chain_dir), Some(&wal_dir), ShardedConfig::new(2, 32)).unwrap();
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b]));
        fs::remove_dir_all(&root).unwrap();
    }

    // Mid-removal on the re-base path: the new chain's manifest is
    // committed, the kill landed partway through deleting the previous
    // chain's files — the leftover orphan must be invisible.
    {
        let root = temp_dir("chain-kill-mid-removal");
        let wal_dir = root.join("wal");
        let chain_dir = root.join("chain");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        let mut chain = CheckpointChain::open(&chain_dir, 1).unwrap();
        apply_batch(&db, &wal, &a);
        chain.checkpoint(&db, Some(&wal)).unwrap();
        apply_batch(&db, &wal, &b);
        chain.checkpoint(&db, Some(&wal)).unwrap();
        apply_batch(&db, &wal, &c);
        let killed = chain
            .checkpoint_until(&db, Some(&wal), Some(ChainStep::ManifestWritten))
            .unwrap();
        assert!(killed.rebased);
        drop((db, wal, chain));
        // Delete the old chain's base but leave its delta as an orphan.
        let old_base = fs::read_dir(&chain_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                let name = p.file_name().unwrap().to_string_lossy().into_owned();
                name.starts_with("base-") && name.contains("0000000000000001")
            })
            .expect("old chain base should still exist before the partial removal");
        fs::remove_file(&old_base).unwrap();

        let (recovered, _) =
            recover_sharded(Some(&chain_dir), Some(&wal_dir), ShardedConfig::new(2, 32)).unwrap();
        assert_equiv(&recovered, &oracle_of_batches(&[&a, &b, &c]));
        fs::remove_dir_all(&root).unwrap();
    }
}

/// Satellite wall: fuzz the chain's on-disk index. The chain is built
/// *without* discarding the WAL, so acknowledged data must always be
/// recoverable — damaged chains degrade to the newest loadable prefix
/// and the log supplies the rest; nothing panics, nothing is silently
/// lost.
#[test]
fn chain_index_fuzz_degrades_to_the_newest_loadable_prefix() {
    let keys = chain_keys();
    let a = batch(&keys, 0, 12);
    let b = batch(&keys, 1_000, 9);
    let c = batch(&keys, 2_000, 5);

    // base(a) + delta(b) + delta(c); the WAL holds every record because
    // the chain runs un-walled here (no generation ever discarded).
    let build = |tag: &str| -> PathBuf {
        let root = temp_dir(tag);
        let wal_dir = root.join("wal");
        let chain_dir = root.join("chain");
        let db = ShardedDb::with_config(ShardedConfig::new(2, 32));
        let wal = Wal::open(&wal_dir, 2, FsyncPolicy::EveryN(4)).unwrap();
        let mut chain = CheckpointChain::open(&chain_dir, 8).unwrap();
        apply_batch(&db, &wal, &a);
        chain.checkpoint(&db, None).unwrap();
        apply_batch(&db, &wal, &b);
        chain.checkpoint(&db, None).unwrap();
        apply_batch(&db, &wal, &c);
        chain.checkpoint(&db, None).unwrap();
        wal.seal().unwrap();
        root
    };
    let full_oracle = oracle_of_batches(&[&a, &b, &c]);

    // Garbage manifest — including a bit-flip sweep over every byte
    // (strided unless CRASH_EXTENDED=1): the CRC rejects the manifest,
    // the fold degrades to empty, and the WAL recovers everything.
    {
        let root = build("chain-fuzz-manifest");
        let manifest = root.join("chain").join("MANIFEST");
        let pristine = fs::read(&manifest).unwrap();
        let stride = if extended() { 1 } else { 7 };
        let mut flips: Vec<Vec<u8>> = (0..pristine.len())
            .step_by(stride)
            .map(|i| {
                let mut bytes = pristine.clone();
                bytes[i] ^= 1 << (i % 8);
                bytes
            })
            .collect();
        flips.push(b"complete garbage".to_vec());
        flips.push(Vec::new());
        for (i, bytes) in flips.iter().enumerate() {
            fs::write(&manifest, bytes).unwrap();
            let (folded, report) =
                load_chain_with_report(&root.join("chain"), ShardedConfig::new(2, 32)).unwrap();
            assert_eq!(folded.series_count(), 0, "fuzz case {i} half-loaded");
            assert!(report.damage.is_some(), "fuzz case {i} went undetected");
            let (recovered, _) = recover_sharded(
                Some(&root.join("chain")),
                Some(&root.join("wal")),
                ShardedConfig::new(2, 32),
            )
            .unwrap();
            assert_equiv(&recovered, &full_oracle);
        }
        fs::remove_dir_all(&root).unwrap();
    }

    // Manifest referencing a missing delta: the fold stops at the link
    // before the hole — even though a later delta file exists.
    {
        let root = build("chain-fuzz-missing");
        let chain_dir = root.join("chain");
        let missing = fs::read_dir(&chain_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().ends_with("-00000001.snap"))
            .expect("first delta exists");
        fs::remove_file(&missing).unwrap();

        let (folded, report) =
            load_chain_with_report(&chain_dir, ShardedConfig::new(2, 32)).unwrap();
        assert_eq!((report.links_total, report.links_loaded), (3, 1));
        assert!(report.damage.is_some());
        assert_equiv(&folded, &oracle_of_batches(&[&a]));

        let (recovered, _) =
            recover_sharded(Some(&chain_dir), Some(&root.join("wal")), ShardedConfig::new(2, 32))
                .unwrap();
        assert_equiv(&recovered, &full_oracle);
        fs::remove_dir_all(&root).unwrap();
    }

    // Delta from a foreign chain renamed into place: the chain-id check
    // stops the fold at the preceding link.
    {
        let root = build("chain-fuzz-foreign");
        let chain_dir = root.join("chain");
        // Build a second, unrelated store whose chain id advanced past 1
        // (a re-base after reopen bumps it), then steal its delta.
        let other_root = temp_dir("chain-fuzz-foreign-other");
        let other_dir = other_root.join("chain");
        let other_db = ShardedDb::with_config(ShardedConfig::new(1, 32));
        apply_batch_unlogged(&other_db, &batch(&keys, 9_000, 4));
        let mut other = CheckpointChain::open(&other_dir, 8).unwrap();
        other.checkpoint(&other_db, None).unwrap();
        drop(other);
        let mut other = CheckpointChain::open(&other_dir, 8).unwrap();
        other.checkpoint(&other_db, None).unwrap(); // re-base: chain id 2
        apply_batch_unlogged(&other_db, &batch(&keys, 12_000, 3));
        other.checkpoint(&other_db, None).unwrap(); // delta under chain 2
        let foreign = fs::read_dir(&other_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("delta-"))
            .expect("foreign delta exists");

        let target = fs::read_dir(&chain_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().ends_with("-00000001.snap"))
            .unwrap();
        fs::copy(&foreign, &target).unwrap();

        let (folded, report) =
            load_chain_with_report(&chain_dir, ShardedConfig::new(2, 32)).unwrap();
        assert_eq!((report.links_total, report.links_loaded), (3, 1));
        assert!(report.damage.as_deref().unwrap_or("").contains("foreign"), "{report:?}");
        assert_equiv(&folded, &oracle_of_batches(&[&a]));

        let (recovered, _) =
            recover_sharded(Some(&chain_dir), Some(&root.join("wal")), ShardedConfig::new(2, 32))
                .unwrap();
        assert_equiv(&recovered, &full_oracle);
        fs::remove_dir_all(&root).unwrap();
        fs::remove_dir_all(&other_root).unwrap();
    }
}

/// Store writes without a WAL — for scratch stores in the fuzz setup.
fn apply_batch_unlogged(db: &ShardedDb, batch: &[(usize, SeriesKey, DataPoint)]) {
    for (_, key, point) in batch {
        db.write(key, *point).unwrap();
    }
}

/// Satellite wall: repeated online checkpoints against a **live**
/// concurrent ingest pipeline, then a kill — recovery from chain + WAL
/// tail must equal the live store, byte for byte in query space.
#[test]
fn checkpoint_under_concurrent_ingest_recovers_to_the_live_store() {
    let root = temp_dir("chain-live");
    let wal_dir = root.join("wal");
    let chain_dir = root.join("chain");
    let shards = 3;
    let db = ShardedDb::with_config(ShardedConfig::new(shards, 16));
    let wal = Wal::open(&wal_dir, shards, FsyncPolicy::EveryN(8)).unwrap();
    let mut chain = CheckpointChain::open(&chain_dir, 3).unwrap();

    let series: Vec<Vec<DataPoint>> = (0..4)
        .map(|h| {
            (0..400)
                .map(|i| DataPoint::new(i * 7 + h, i as f64 * 0.5 + h as f64))
                .collect()
        })
        .collect();
    let doc = render_lines(&series, 2).join("\n") + "\n";
    let config = IngestConfig {
        lateness: Some(10),
        wal: Some(wal.clone()),
        ..IngestConfig::default()
    };
    let mut ingestor = StreamIngestor::new(&db, 0, config).unwrap();
    for (i, slice) in doc.as_bytes().chunks(257).enumerate() {
        ingestor.feed(slice);
        // Checkpoint while the pipeline's parser/writer threads are
        // still applying earlier slices.
        if i % 5 == 4 {
            let report = chain.checkpoint(&db, Some(&wal)).unwrap();
            assert!(report.completed);
        }
    }
    let report = ingestor.finish();
    assert!(report.is_clean(), "{report:?}");
    drop((wal, chain)); // the kill: no seal, records past the last checkpoint live only in the log

    let (recovered, replay_report) =
        recover_sharded(Some(&chain_dir), Some(&wal_dir), ShardedConfig::new(2, 16)).unwrap();
    assert_eq!(replay_report.damaged, 0);
    let any = Selector::any();
    assert_eq!(recovered.list_series(&any), db.list_series(&any));
    assert_eq!(
        recovered.query_selector(&any, full()).unwrap(),
        db.query_selector(&any, full()).unwrap()
    );
    fs::remove_dir_all(&root).unwrap();
}

const FIELD_NAMES: [&str; 3] = ["usage", "idle", "iowait"];

/// Renders per-series timestamp runs into record lines, round-robin
/// across hosts (same shape as `stream_properties.rs`).
fn render_lines(series: &[Vec<DataPoint>], fields: usize) -> Vec<String> {
    let mut cursors = vec![0usize; series.len()];
    let mut lines = Vec::new();
    loop {
        let mut progressed = false;
        for (h, points) in series.iter().enumerate() {
            let Some(p) = points.get(cursors[h]) else {
                continue;
            };
            cursors[h] += 1;
            progressed = true;
            let mut line = format!("cpu,host=h{h} ");
            for (f, name) in FIELD_NAMES.iter().enumerate().take(fields) {
                if f > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{name}={}", p.value + f as f64));
            }
            line.push_str(&format!(" {}", p.timestamp));
            lines.push(line);
        }
        if !progressed {
            return lines;
        }
    }
}

/// A generated kill-the-stream case: a shuffled-within-lateness document,
/// pipeline knobs, and per-shard kill fractions.
#[derive(Debug, Clone)]
struct KilledStreamCase {
    shuffled_doc: String,
    shards: usize,
    block_capacity: usize,
    lateness: i64,
    /// Fraction of each shard's log that survives the kill.
    keep: Vec<f64>,
    /// Shard count of the store the log replays into after the crash.
    recover_shards: usize,
}

fn killed_stream_case() -> impl Strategy<Value = KilledStreamCase> {
    (
        (
            prop::collection::vec(
                prop::collection::vec((1i64..300, -1.0e3..1.0e3f64), 1..40),
                1..4,
            ),
            1usize..4,  // fields
            1usize..5,  // shards
            1usize..32, // block capacity
        ),
        (
            1i64..30, // lateness
            prop::collection::vec(0.0..1.0f64, 1..16), // shuffle jitter draws
            prop::collection::vec(0.0..1.0f64, 5..6),  // per-shard keep fractions
            1usize..5, // recover-time shard count
        ),
    )
        .prop_map(
            |(
                (series, fields, shards, block_capacity),
                (lateness, jitters, keep, recover_shards),
            )| {
                let series: Vec<Vec<DataPoint>> = series
                    .into_iter()
                    .map(|gaps| {
                        let mut ts = -500i64;
                        gaps.into_iter()
                            .map(|(gap, v)| {
                                ts += gap;
                                DataPoint::new(ts, v)
                            })
                            .collect()
                    })
                    .collect();
                let lines = render_lines(&series, fields);
                let mut keyed: Vec<(i64, usize, String)> = lines
                    .into_iter()
                    .enumerate()
                    .map(|(i, line)| {
                        let ts: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                        let jitter = (jitters[i % jitters.len()] * lateness as f64) as i64;
                        (ts.saturating_add(jitter.min(lateness - 1)), i, line)
                    })
                    .collect();
                keyed.sort_by_key(|&(key, i, _)| (key, i));
                let shuffled: Vec<String> = keyed.into_iter().map(|(_, _, line)| line).collect();
                KilledStreamCase {
                    shuffled_doc: shuffled.join("\n") + "\n",
                    shards,
                    block_capacity,
                    lateness,
                    keep,
                    recover_shards,
                }
            },
        )
}

proptest! {
    /// Satellite wall: a shuffled-lateness stream through
    /// `StreamIngestor` with the WAL enabled, "killed" at an arbitrary
    /// per-shard record boundary, replays into exactly the prefix oracle
    /// of the surviving records — under any shard count, block capacity,
    /// and kill point, including recovery into a different shard count.
    #[test]
    fn killed_stream_replays_to_the_prefix_oracle(case in killed_stream_case()) {
        let dir = temp_dir("killed-stream");
        let db = ShardedDb::with_config(ShardedConfig::new(case.shards, case.block_capacity));
        let wal = Wal::open(&dir, case.shards, FsyncPolicy::EveryN(1 << 20)).unwrap();
        let config = IngestConfig {
            lateness: Some(case.lateness),
            wal: Some(wal.clone()),
            ..IngestConfig::default()
        };
        let mut ingestor = StreamIngestor::new(&db, 0, config).unwrap();
        ingestor.feed(case.shuffled_doc.as_bytes());
        let report = ingestor.finish();
        prop_assert!(report.is_clean(), "{report:?}");
        prop_assert_eq!(wal.stats().records, report.points as u64);
        drop((db, wal)); // the kill: no seal, no snapshot

        // Truncate each shard's log at a record boundary computed from
        // the documented format (the sum of record_len over the kept
        // prefix), then collect the survivors in replay order.
        let mut survivors: Vec<WalRecord> = Vec::new();
        for file in wal_files(&dir).unwrap() {
            let segment = read_records(&file.path).unwrap();
            prop_assert!(segment.damage.is_none(), "{:?}", segment.damage);
            // Scale by len + 1 so the draw reaches both "lost everything"
            // and "lost nothing" kill points.
            let kept = ((case.keep[file.shard % case.keep.len()]
                * (segment.records.len() + 1) as f64) as usize)
                .min(segment.records.len());
            let cut: usize = segment.records[..kept]
                .iter()
                .map(|r| record_len(&r.key))
                .sum();
            let bytes = fs::read(&file.path).unwrap();
            fs::write(&file.path, &bytes[..cut]).unwrap();
            survivors.extend_from_slice(&segment.records[..kept]);
        }

        let recovered =
            ShardedDb::with_config(ShardedConfig::new(case.recover_shards, case.block_capacity));
        let replay_report = replay(&dir, &recovered).unwrap();
        prop_assert_eq!(replay_report.applied, survivors.len() as u64);
        prop_assert_eq!(replay_report.skipped, 0);
        prop_assert_eq!(replay_report.damaged, 0);
        assert_equiv(&recovered, &oracle_of(&survivors, case.block_capacity));
        fs::remove_dir_all(&dir).unwrap();
    }
}
