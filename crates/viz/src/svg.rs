//! SVG line-chart generation (no external dependencies).
//!
//! Produces self-contained `<svg>` documents: axes with nice ticks, one
//! polyline per series, optional shaded x-regions (used to mark anomaly
//! windows in the user-study figures), a legend, and a title. The figure
//! binaries write these next to their printed tables so the reproduction's
//! plots can be eyeballed against the paper's.

use std::fmt::Write as _;

use crate::error::VizError;
use crate::scale::{format_tick, nice_ticks, LinearScale};

/// Default qualitative palette (ColorBrewer Set1-like).
const PALETTE: [&str; 6] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#666666",
];

/// One plotted series.
#[derive(Debug, Clone)]
pub struct SvgSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in data coordinates.
    pub points: Vec<(f64, f64)>,
    /// Stroke color (`None` picks from the palette by index).
    pub color: Option<String>,
}

impl SvgSeries {
    /// Creates a series from y-values plotted against their index.
    pub fn from_values(label: impl Into<String>, values: &[f64]) -> Self {
        Self {
            label: label.into(),
            points: values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v))
                .collect(),
            color: None,
        }
    }

    /// Creates a series from explicit `(x, y)` pairs.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
            color: None,
        }
    }

    /// Overrides the stroke color.
    pub fn color(mut self, c: impl Into<String>) -> Self {
        self.color = Some(c.into());
        self
    }
}

/// A shaded vertical band marking an x-interval of interest.
#[derive(Debug, Clone, Copy)]
pub struct Highlight {
    /// Band start in data x-coordinates.
    pub x0: f64,
    /// Band end in data x-coordinates.
    pub x1: f64,
}

/// An SVG line-chart builder.
#[derive(Debug, Clone)]
pub struct SvgChart {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Chart title.
    pub title: Option<String>,
    /// y-axis label.
    pub y_label: Option<String>,
    /// Shaded x-bands.
    pub highlights: Vec<Highlight>,
    series: Vec<SvgSeries>,
}

impl SvgChart {
    /// Creates an empty chart of the given pixel dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            title: None,
            y_label: None,
            highlights: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Sets the title.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, t: impl Into<String>) -> Self {
        self.y_label = Some(t.into());
        self
    }

    /// Adds a shaded x-band.
    pub fn highlight(mut self, x0: f64, x1: f64) -> Self {
        self.highlights.push(Highlight { x0, x1 });
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: SvgSeries) -> Self {
        self.series.push(s);
        self
    }

    /// Renders the chart to an SVG document string.
    pub fn render(&self) -> Result<String, VizError> {
        if self.width < 80 || self.height < 60 {
            return Err(VizError::InvalidDimensions {
                message: "svg chart needs at least 80x60 pixels",
            });
        }
        if self.series.is_empty() || self.series.iter().any(|s| s.points.is_empty()) {
            return Err(VizError::EmptySeries);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (i, &(x, y)) in s.points.iter().enumerate() {
                if !(x.is_finite() && y.is_finite()) {
                    return Err(VizError::NonFinite { index: i });
                }
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
        }

        // Layout: margins hold title, ticks, labels, legend.
        let ml = 52.0;
        let mr = 12.0;
        let mt = if self.title.is_some() { 28.0 } else { 10.0 };
        let mb = 30.0;
        let plot_w = self.width as f64 - ml - mr;
        let plot_h = self.height as f64 - mt - mb;
        let xs = LinearScale::new((x0, x1), (ml, ml + plot_w));
        let ys = LinearScale::new((y0, y1), (mt + plot_h, mt));

        let mut svg = String::new();
        let _ = write!(
            svg,
            r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="Helvetica,Arial,sans-serif">"##,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            svg,
            r##"<rect width="{}" height="{}" fill="white"/>"##,
            self.width, self.height
        );

        // Shaded highlight bands, clipped to the plot area.
        for hl in &self.highlights {
            let (a, b) = (xs.apply(hl.x0), xs.apply(hl.x1));
            let (a, b) = (a.min(b), a.max(b));
            let a = a.clamp(ml, ml + plot_w);
            let b = b.clamp(ml, ml + plot_w);
            if b > a {
                let _ = write!(
                    svg,
                    r##"<rect x="{a:.1}" y="{mt:.1}" width="{:.1}" height="{plot_h:.1}" fill="#fdd" fill-opacity="0.6"/>"##,
                    b - a
                );
            }
        }

        // Grid + ticks.
        for t in nice_ticks(y0, y1, 4) {
            let y = ys.apply(t);
            let _ = write!(
                svg,
                r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd" stroke-width="1"/>"##,
                ml + plot_w
            );
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" font-size="10" text-anchor="end" fill="#444">{}</text>"##,
                ml - 5.0,
                y + 3.0,
                format_tick(t)
            );
        }
        for t in nice_ticks(x0, x1, 6) {
            let x = xs.apply(t);
            let _ = write!(
                svg,
                r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#444" stroke-width="1"/>"##,
                mt + plot_h,
                mt + plot_h + 4.0
            );
            let _ = write!(
                svg,
                r##"<text x="{x:.1}" y="{:.1}" font-size="10" text-anchor="middle" fill="#444">{}</text>"##,
                mt + plot_h + 15.0,
                format_tick(t)
            );
        }
        // Axes.
        let _ = write!(
            svg,
            r##"<rect x="{ml}" y="{mt}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#444" stroke-width="1"/>"##
        );

        // Series polylines.
        for (i, s) in self.series.iter().enumerate() {
            let color = s
                .color
                .clone()
                .unwrap_or_else(|| PALETTE[i % PALETTE.len()].to_string());
            let mut d = String::with_capacity(s.points.len() * 12);
            for (j, &(x, y)) in s.points.iter().enumerate() {
                let cmd = if j == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.1} {:.1}", xs.apply(x), ys.apply(y));
            }
            let _ = write!(
                svg,
                r##"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.2"/>"##
            );
        }

        // Legend (only when more than one series).
        if self.series.len() > 1 {
            let mut lx = ml + 8.0;
            let ly = mt + 12.0;
            for (i, s) in self.series.iter().enumerate() {
                let color = s
                    .color
                    .clone()
                    .unwrap_or_else(|| PALETTE[i % PALETTE.len()].to_string());
                let _ = write!(
                    svg,
                    r##"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"##,
                    lx + 14.0
                );
                let _ = write!(
                    svg,
                    r##"<text x="{:.1}" y="{:.1}" font-size="10" fill="#222">{}</text>"##,
                    lx + 18.0,
                    ly + 3.0,
                    escape(&s.label)
                );
                lx += 18.0 + 7.0 * s.label.len() as f64 + 12.0;
            }
        }

        if let Some(t) = &self.title {
            let _ = write!(
                svg,
                r##"<text x="{:.1}" y="18" font-size="13" font-weight="bold" text-anchor="middle" fill="#111">{}</text>"##,
                self.width as f64 / 2.0,
                escape(t)
            );
        }
        if let Some(t) = &self.y_label {
            let _ = write!(
                svg,
                r##"<text x="12" y="{:.1}" font-size="10" fill="#444" transform="rotate(-90 12 {0:.1})" text-anchor="middle">{1}</text>"##,
                mt + plot_h / 2.0,
                escape(t)
            );
        }
        svg.push_str("</svg>");
        Ok(svg)
    }
}

/// Escapes text for embedding in SVG.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 / 8.0).sin()).collect()
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = SvgChart::new(640, 240)
            .title("test & <chart>")
            .y_label("zscore")
            .series(SvgSeries::from_values("raw", &wave(200)))
            .render()
            .unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("test &amp; &lt;chart&gt;"), "escaped title");
        assert!(svg.contains("<path"), "series polyline present");
        assert_eq!(svg.matches("<path").count(), 1);
    }

    #[test]
    fn multi_series_gets_legend_and_distinct_colors() {
        let svg = SvgChart::new(640, 240)
            .series(SvgSeries::from_values("a", &wave(50)))
            .series(SvgSeries::from_values("b", &wave(80)))
            .render()
            .unwrap();
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn highlight_band_rendered_within_plot() {
        let svg = SvgChart::new(640, 240)
            .highlight(10.0, 20.0)
            .series(SvgSeries::from_values("raw", &wave(100)))
            .render()
            .unwrap();
        assert!(svg.contains("#fdd"), "highlight band fill present");
    }

    #[test]
    fn out_of_domain_highlight_is_clipped_away() {
        let svg = SvgChart::new(640, 240)
            .highlight(-500.0, -400.0)
            .series(SvgSeries::from_values("raw", &wave(100)))
            .render()
            .unwrap();
        assert!(!svg.contains("#fdd"), "fully clipped band omitted");
    }

    #[test]
    fn errors_on_bad_input() {
        assert_eq!(
            SvgChart::new(640, 240).render().unwrap_err(),
            VizError::EmptySeries
        );
        assert!(matches!(
            SvgChart::new(10, 10)
                .series(SvgSeries::from_values("x", &[1.0]))
                .render()
                .unwrap_err(),
            VizError::InvalidDimensions { .. }
        ));
        assert_eq!(
            SvgChart::new(640, 240)
                .series(SvgSeries::from_values("x", &[1.0, f64::NAN]))
                .render()
                .unwrap_err(),
            VizError::NonFinite { index: 1 }
        );
    }

    #[test]
    fn explicit_color_and_points_respected() {
        let svg = SvgChart::new(640, 240)
            .series(
                SvgSeries::from_points("x", vec![(0.0, 1.0), (5.0, 2.0)]).color("#123456"),
            )
            .render()
            .unwrap();
        assert!(svg.contains("#123456"));
    }

    #[test]
    fn constant_series_renders() {
        let svg = SvgChart::new(640, 240)
            .series(SvgSeries::from_values("flat", &[2.0; 10]))
            .render()
            .unwrap();
        assert!(svg.contains("<path"));
    }
}
