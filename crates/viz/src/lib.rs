//! Chart rendering substrate for the ASAP reproduction.
//!
//! ASAP is a *visualization* operator — its output is meant to be drawn.
//! The paper ships a JavaScript front-end; this crate is the Rust
//! equivalent for the reproduction's figures and examples:
//!
//! * [`svg`] — dependency-free SVG line charts (axes, nice ticks, multiple
//!   series, anomaly-band highlights, legends);
//! * [`figure`] — vertically stacked multi-panel figures, the layout of
//!   the paper's raw/ASAP/oversmoothed galleries (Fig. 1–3, C.2);
//! * [`terminal`] — braille-canvas terminal charts and block sparklines
//!   for the runnable examples;
//! * [`canvas`] / [`scale`] — the dot-matrix and data→screen mapping
//!   substrates beneath both back-ends.
//!
//! # Example
//!
//! ```
//! use asap_viz::{SvgChart, SvgSeries, TerminalChart};
//!
//! let noisy: Vec<f64> = (0..200).map(|i| (i as f64 / 12.0).sin()).collect();
//! // Terminal chart (braille canvas):
//! let text = TerminalChart::new(60, 8).title("wave").render(&[&noisy]).unwrap();
//! assert!(text.contains("wave"));
//! // SVG chart:
//! let svg = SvgChart::new(640, 240)
//!     .series(SvgSeries::from_values("wave", &noisy))
//!     .render()
//!     .unwrap();
//! assert!(svg.starts_with("<svg"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canvas;
pub mod error;
pub mod figure;
pub mod scale;
pub mod svg;
pub mod terminal;

pub use canvas::BrailleCanvas;
pub use error::VizError;
pub use figure::Figure;
pub use scale::{format_tick, nice_ticks, LinearScale};
pub use svg::{Highlight, SvgChart, SvgSeries};
pub use terminal::{sparkline, TerminalChart};
