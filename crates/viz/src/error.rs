//! Error type for the rendering substrate.

use std::fmt;

/// Errors produced while building charts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VizError {
    /// A series to plot was empty.
    EmptySeries,
    /// A chart dimension (width/height) was zero or too small to render.
    InvalidDimensions {
        /// Human-readable description of the violated constraint.
        message: &'static str,
    },
    /// The data contained a NaN or infinity, which has no screen position.
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
}

impl fmt::Display for VizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VizError::EmptySeries => write!(f, "cannot plot an empty series"),
            VizError::InvalidDimensions { message } => {
                write!(f, "invalid chart dimensions: {message}")
            }
            VizError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index} has no screen position")
            }
        }
    }
}

impl std::error::Error for VizError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VizError::EmptySeries.to_string().contains("empty"));
        assert!(VizError::InvalidDimensions { message: "w=0" }
            .to_string()
            .contains("w=0"));
        assert!(VizError::NonFinite { index: 4 }.to_string().contains('4'));
    }
}
