//! Terminal line charts with axes, built on the braille canvas.

use crate::canvas::BrailleCanvas;
use crate::error::VizError;
use crate::scale::{format_tick, nice_ticks, LinearScale};

/// Configuration for a terminal chart.
#[derive(Debug, Clone)]
pub struct TerminalChart {
    /// Plot width in character cells (excluding the y-label gutter).
    pub width: usize,
    /// Plot height in character cells.
    pub height: usize,
    /// Optional title printed above the plot.
    pub title: Option<String>,
    /// Number of y-axis labels (0 disables the gutter).
    pub y_ticks: usize,
}

impl Default for TerminalChart {
    fn default() -> Self {
        Self {
            width: 72,
            height: 12,
            title: None,
            y_ticks: 3,
        }
    }
}

impl TerminalChart {
    /// Creates a chart of `width × height` character cells.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            ..Self::default()
        }
    }

    /// Sets the title.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.title = Some(t.into());
        self
    }

    /// Renders one or more series (each an equal-footing line) to text.
    ///
    /// All series share the y-scale; x is the sample index of the longest
    /// series. Returns the chart as a newline-joined string.
    pub fn render(&self, series: &[&[f64]]) -> Result<String, VizError> {
        if self.width < 8 || self.height < 2 {
            return Err(VizError::InvalidDimensions {
                message: "terminal chart needs at least 8x2 cells",
            });
        }
        if series.is_empty() || series.iter().any(|s| s.is_empty()) {
            return Err(VizError::EmptySeries);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in series {
            for (i, &v) in s.iter().enumerate() {
                if !v.is_finite() {
                    return Err(VizError::NonFinite { index: i });
                }
                min = min.min(v);
                max = max.max(v);
            }
        }
        let longest = series.iter().map(|s| s.len()).max().unwrap_or(1);

        let mut canvas = BrailleCanvas::new(self.width, self.height);
        let y_scale = LinearScale::new((min, max), (canvas.height() as f64 - 1.0, 0.0));
        for s in series {
            let x_scale =
                LinearScale::new((0.0, (s.len() - 1).max(1) as f64), (0.0, canvas.width() as f64 - 1.0));
            let px = |i: usize, v: f64| {
                (
                    x_scale.apply(i as f64).round() as i64,
                    y_scale.apply(v).round() as i64,
                )
            };
            if s.len() == 1 {
                let (x, y) = px(0, s[0]);
                canvas.set(x, y);
                continue;
            }
            for i in 0..s.len() - 1 {
                let (x0, y0) = px(i, s[i]);
                let (x1, y1) = px(i + 1, s[i + 1]);
                canvas.line(x0, y0, x1, y1);
            }
        }

        // Assemble: title, rows with a right-aligned y-label gutter, x-axis.
        let labels = self.y_labels(min, max);
        let gutter = labels.iter().map(|(_, l)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&" ".repeat(gutter + 1));
            out.push_str(t);
            out.push('\n');
        }
        for (row, line) in canvas.render().into_iter().enumerate() {
            let label = labels
                .iter()
                .find(|(r, _)| *r == row)
                .map(|(_, l)| l.as_str())
                .unwrap_or("");
            out.push_str(&format!("{label:>gutter$}|{line}\n"));
        }
        out.push_str(&" ".repeat(gutter + 1));
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "{:gutter$} 0{:>w$}\n",
            "",
            longest - 1,
            w = self.width.saturating_sub(2)
        ));
        Ok(out)
    }

    /// Picks `(row, label)` pairs for the y gutter.
    fn y_labels(&self, min: f64, max: f64) -> Vec<(usize, String)> {
        if self.y_ticks == 0 {
            return Vec::new();
        }
        let scale = LinearScale::new((min, max), ((self.height * 4) as f64 - 1.0, 0.0));
        nice_ticks(min, max, self.y_ticks)
            .into_iter()
            .map(|t| {
                let row = (scale.apply(t) / 4.0).floor().clamp(0.0, self.height as f64 - 1.0);
                (row as usize, format_tick(t))
            })
            .collect()
    }
}

/// Renders a one-line block-character sparkline (`▁▂▃▄▅▆▇█`).
///
/// Values are binned to the available width; NaN samples render as spaces.
pub fn sparkline(data: &[f64], width: usize) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if data.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = data.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(width.min(data.len()));
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if max > min { max - min } else { 1.0 };
    let width = width.min(data.len());
    let per = data.len() as f64 / width as f64;
    (0..width)
        .map(|i| {
            let lo = (i as f64 * per) as usize;
            let hi = (((i + 1) as f64 * per) as usize).clamp(lo + 1, data.len());
            let bucket: Vec<f64> = data[lo..hi].iter().copied().filter(|v| v.is_finite()).collect();
            if bucket.is_empty() {
                return ' ';
            }
            let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
            let level = ((mean - min) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            BLOCKS[level]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_expected_shape() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin()).collect();
        let out = TerminalChart::new(40, 8)
            .title("sine")
            .render(&[&data])
            .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // title + 8 rows + axis + x labels
        assert_eq!(lines.len(), 1 + 8 + 1 + 1);
        assert!(lines[0].contains("sine"));
        assert!(out.contains('⠀') || out.contains('⡀') || out.chars().any(|c| ('\u{2800}'..='\u{28FF}').contains(&c)));
        assert!(lines.last().unwrap().contains("99"), "x extent labelled");
    }

    #[test]
    fn errors_on_bad_input() {
        let c = TerminalChart::new(40, 8);
        assert_eq!(c.render(&[]).unwrap_err(), VizError::EmptySeries);
        let empty: &[f64] = &[];
        assert_eq!(c.render(&[empty]).unwrap_err(), VizError::EmptySeries);
        assert_eq!(
            c.render(&[&[1.0, f64::NAN]]).unwrap_err(),
            VizError::NonFinite { index: 1 }
        );
        assert!(matches!(
            TerminalChart::new(2, 1).render(&[&[1.0]]),
            Err(VizError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn constant_series_renders_mid_line() {
        let out = TerminalChart::new(20, 4).render(&[&[5.0; 40]]).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn multiple_series_share_scale() {
        let a: Vec<f64> = vec![0.0; 50];
        let b: Vec<f64> = vec![10.0; 50];
        let out = TerminalChart::new(30, 6).render(&[&a, &b]).unwrap();
        // Both flat lines visible: braille dots in top and bottom rows.
        let rows: Vec<&str> = out.lines().collect();
        let braille = |s: &str| s.chars().any(|c| c > '\u{2800}' && c <= '\u{28FF}');
        assert!(braille(rows[0]), "top series drawn");
        assert!(braille(rows[5]), "bottom series drawn");
    }

    #[test]
    fn single_point_series_renders() {
        let out = TerminalChart::new(20, 4).render(&[&[3.0]]).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn sparkline_levels_track_magnitude() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
    }

    #[test]
    fn sparkline_bins_wide_input() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = sparkline(&data, 10);
        assert_eq!(s.chars().count(), 10);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        assert!(last > first, "monotone data yields increasing blocks");
    }

    #[test]
    fn sparkline_edge_cases() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        assert_eq!(sparkline(&[f64::NAN, f64::NAN], 2), "  ");
        assert_eq!(sparkline(&[2.0, 2.0], 2).chars().count(), 2);
    }
}
