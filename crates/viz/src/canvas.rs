//! A braille dot-matrix canvas for terminal plotting.
//!
//! Unicode braille patterns (U+2800–U+28FF) pack a 2×4 dot grid into one
//! character cell, giving terminal charts 2× horizontal and 4× vertical
//! resolution over plain block characters. Each canvas pixel is one braille
//! dot; lines are drawn with Bresenham's algorithm.

/// Dot offsets within a braille cell, indexed by `(x % 2, y % 4)`.
///
/// Braille bit layout (ISO/TR 11548-1): dots 1–3 and 7 form the left
/// column, 4–6 and 8 the right.
const DOT_BITS: [[u8; 4]; 2] = [
    [0x01, 0x02, 0x04, 0x40], // left column, rows 0..3
    [0x08, 0x10, 0x20, 0x80], // right column, rows 0..3
];

/// A fixed-size dot matrix rendered to braille characters.
#[derive(Debug, Clone)]
pub struct BrailleCanvas {
    /// Width in character cells.
    cells_w: usize,
    /// Height in character cells.
    cells_h: usize,
    /// One braille bitmask per cell, row-major.
    cells: Vec<u8>,
}

impl BrailleCanvas {
    /// Creates a canvas of `cells_w × cells_h` character cells
    /// (`2*cells_w × 4*cells_h` dots).
    pub fn new(cells_w: usize, cells_h: usize) -> Self {
        Self {
            cells_w,
            cells_h,
            cells: vec![0; cells_w * cells_h],
        }
    }

    /// Dot-grid width.
    pub fn width(&self) -> usize {
        self.cells_w * 2
    }

    /// Dot-grid height.
    pub fn height(&self) -> usize {
        self.cells_h * 4
    }

    /// Sets the dot at `(x, y)`; out-of-bounds dots are silently clipped
    /// (chart edges routinely land half a dot outside).
    pub fn set(&mut self, x: i64, y: i64) {
        if x < 0 || y < 0 || x >= self.width() as i64 || y >= self.height() as i64 {
            return;
        }
        let (x, y) = (x as usize, y as usize);
        let cell = (y / 4) * self.cells_w + (x / 2);
        self.cells[cell] |= DOT_BITS[x % 2][y % 4];
    }

    /// True when the dot at `(x, y)` is set (false outside the canvas).
    pub fn get(&self, x: i64, y: i64) -> bool {
        if x < 0 || y < 0 || x >= self.width() as i64 || y >= self.height() as i64 {
            return false;
        }
        let (x, y) = (x as usize, y as usize);
        let cell = (y / 4) * self.cells_w + (x / 2);
        self.cells[cell] & DOT_BITS[x % 2][y % 4] != 0
    }

    /// Draws a line from `(x0, y0)` to `(x1, y1)` (Bresenham).
    pub fn line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let (mut x, mut y) = (x0, y0);
        loop {
            self.set(x, y);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Renders the canvas as lines of braille characters.
    pub fn render(&self) -> Vec<String> {
        (0..self.cells_h)
            .map(|row| {
                (0..self.cells_w)
                    .map(|col| {
                        let mask = self.cells[row * self.cells_w + col];
                        char::from_u32(0x2800 + u32::from(mask)).expect("valid braille")
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_canvas_renders_blank_braille() {
        let c = BrailleCanvas::new(3, 2);
        let lines = c.render();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.chars().all(|ch| ch == '\u{2800}')));
    }

    #[test]
    fn set_and_get_round_trip_every_dot() {
        let mut c = BrailleCanvas::new(2, 2);
        for x in 0..c.width() as i64 {
            for y in 0..c.height() as i64 {
                assert!(!c.get(x, y));
                c.set(x, y);
                assert!(c.get(x, y), "dot ({x},{y})");
            }
        }
        // All dots set ⇒ every cell is the full braille block.
        assert!(c
            .render()
            .iter()
            .all(|l| l.chars().all(|ch| ch == '\u{28FF}')));
    }

    #[test]
    fn out_of_bounds_clips_silently() {
        let mut c = BrailleCanvas::new(2, 2);
        c.set(-1, 0);
        c.set(0, -1);
        c.set(100, 0);
        c.set(0, 100);
        assert!(!c.get(-1, 0));
        assert!(c.render().iter().all(|l| l.chars().all(|ch| ch == '\u{2800}')));
    }

    #[test]
    fn horizontal_line_sets_expected_dots() {
        let mut c = BrailleCanvas::new(4, 1);
        c.line(0, 2, 7, 2);
        for x in 0..8 {
            assert!(c.get(x, 2));
        }
        assert!(!c.get(0, 1));
    }

    #[test]
    fn diagonal_line_is_monotone() {
        let mut c = BrailleCanvas::new(4, 2);
        c.line(0, 0, 7, 7);
        for i in 0..8 {
            assert!(c.get(i, i), "diagonal dot ({i},{i})");
        }
    }

    #[test]
    fn line_connects_endpoints_in_both_directions() {
        // Bresenham tie-rounding differs by direction; endpoints and
        // column coverage must hold either way.
        for (x0, y0, x1, y1) in [(1, 6, 7, 1), (7, 1, 1, 6)] {
            let mut c = BrailleCanvas::new(4, 2);
            c.line(x0, y0, x1, y1);
            assert!(c.get(x0, y0) && c.get(x1, y1));
            for x in 1..=7 {
                assert!((0..8).any(|y| c.get(x, y)), "column {x} covered");
            }
        }
    }

    #[test]
    fn single_point_line() {
        let mut c = BrailleCanvas::new(2, 1);
        c.line(1, 1, 1, 1);
        assert!(c.get(1, 1));
    }
}
