//! Linear data→screen scales and "nice" axis tick generation.

/// Affine map from a data domain onto a screen range.
///
/// Degenerate domains (min == max) are widened symmetrically so a constant
/// series renders as a centered horizontal line instead of dividing by zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    d0: f64,
    d1: f64,
    r0: f64,
    r1: f64,
}

impl LinearScale {
    /// Creates a scale mapping `[domain_min, domain_max]` → `[range_min, range_max]`.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        let (mut d0, mut d1) = domain;
        if d0 == d1 {
            // Widen by half a unit (or half the magnitude) on each side.
            let pad = if d0 == 0.0 { 0.5 } else { d0.abs() * 0.5 };
            d0 -= pad;
            d1 += pad;
        }
        Self {
            d0,
            d1,
            r0: range.0,
            r1: range.1,
        }
    }

    /// Maps a data value to screen coordinates (extrapolates outside the domain).
    pub fn apply(&self, v: f64) -> f64 {
        self.r0 + (v - self.d0) / (self.d1 - self.d0) * (self.r1 - self.r0)
    }

    /// Maps a screen coordinate back to the data domain.
    pub fn invert(&self, p: f64) -> f64 {
        self.d0 + (p - self.r0) / (self.r1 - self.r0) * (self.d1 - self.d0)
    }

    /// The (possibly widened) data domain.
    pub fn domain(&self) -> (f64, f64) {
        (self.d0, self.d1)
    }
}

/// Returns ~`count` round tick positions covering `[min, max]`.
///
/// Ticks are multiples of 1, 2, or 5 × 10^k (the conventional "nice
/// numbers" algorithm), clipped to the domain.
pub fn nice_ticks(min: f64, max: f64, count: usize) -> Vec<f64> {
    if !(min.is_finite() && max.is_finite()) || count == 0 {
        return Vec::new();
    }
    let (min, max) = if min <= max { (min, max) } else { (max, min) };
    if min == max {
        return vec![min];
    }
    let raw_step = (max - min) / count as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag; // in [1, 10)
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    // Tolerate rounding at the upper edge.
    while t <= max + step * 1e-9 {
        // Snap values like 0.30000000000000004 to a clean representation.
        let snapped = (t / step).round() * step;
        ticks.push(if snapped == 0.0 { 0.0 } else { snapped });
        t += step;
    }
    if ticks.is_empty() {
        // A coarse step may hold no round multiple inside a narrow range
        // (e.g. count = 1 over a span that straddles no round number);
        // always give the axis at least its midpoint.
        ticks.push((min + max) / 2.0);
    }
    ticks
}

/// Formats a tick label compactly (trims trailing zeros, switches to
/// scientific notation for extreme magnitudes).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-4..1e7).contains(&a) {
        return format!("{v:.1e}");
    }
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_endpoints_and_midpoint() {
        let s = LinearScale::new((0.0, 10.0), (100.0, 200.0));
        assert_eq!(s.apply(0.0), 100.0);
        assert_eq!(s.apply(10.0), 200.0);
        assert_eq!(s.apply(5.0), 150.0);
    }

    #[test]
    fn inverted_range_flips_axis() {
        // SVG y grows downward; charts hand an inverted range.
        let s = LinearScale::new((0.0, 1.0), (100.0, 0.0));
        assert_eq!(s.apply(0.0), 100.0);
        assert_eq!(s.apply(1.0), 0.0);
    }

    #[test]
    fn invert_round_trips() {
        let s = LinearScale::new((-3.0, 7.0), (0.0, 640.0));
        for v in [-3.0, 0.0, 1.234, 7.0] {
            assert!((s.invert(s.apply(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_domain_widens() {
        let s = LinearScale::new((5.0, 5.0), (0.0, 100.0));
        assert_eq!(s.apply(5.0), 50.0, "constant series centers");
        let s = LinearScale::new((0.0, 0.0), (0.0, 100.0));
        assert_eq!(s.apply(0.0), 50.0);
    }

    #[test]
    fn ticks_are_round_and_cover_domain() {
        let t = nice_ticks(0.0, 100.0, 5);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t = nice_ticks(-2.3, 2.3, 4);
        assert!(t.contains(&0.0));
        assert!(t.iter().all(|&x| (-2.3..=2.3).contains(&x)));
    }

    #[test]
    fn ticks_handle_edge_cases() {
        assert!(nice_ticks(f64::NAN, 1.0, 5).is_empty());
        assert!(nice_ticks(0.0, 1.0, 0).is_empty());
        assert_eq!(nice_ticks(3.0, 3.0, 5), vec![3.0]);
        // Inverted bounds are reordered.
        let t = nice_ticks(10.0, 0.0, 5);
        assert!(t.first().unwrap() >= &0.0 && t.last().unwrap() <= &10.0);
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(20.0), "20");
        assert_eq!(format_tick(0.5), "0.5");
        assert_eq!(format_tick(-1.25), "-1.25");
        assert!(format_tick(3.0e9).contains('e'));
        assert!(format_tick(2.0e-6).contains('e'));
    }

    #[test]
    fn small_fractional_steps_stay_clean() {
        let t = nice_ticks(0.0, 1.0, 5);
        assert_eq!(t.len(), 6);
        for (i, &tick) in t.iter().enumerate() {
            assert!((tick - 0.2 * i as f64).abs() < 1e-12);
        }
    }
}
