//! Multi-panel figures: vertically stacked charts sharing a width.
//!
//! The paper's gallery figures (Fig. 1–3, C.2) are stacked panels of the
//! same series under different treatments (raw / ASAP / oversmoothed).
//! [`Figure`] composes [`SvgChart`]s into one SVG document in that layout.

use std::fmt::Write as _;

use crate::error::VizError;
use crate::svg::SvgChart;

/// A vertical stack of charts rendered into one SVG document.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Width of every panel, in pixels.
    pub width: u32,
    /// Height of each panel, in pixels.
    pub panel_height: u32,
    /// Vertical gap between panels, in pixels.
    pub gap: u32,
    panels: Vec<SvgChart>,
}

impl Figure {
    /// Creates an empty figure with the given panel geometry.
    pub fn new(width: u32, panel_height: u32) -> Self {
        Self {
            width,
            panel_height,
            gap: 6,
            panels: Vec::new(),
        }
    }

    /// Appends a panel. The panel's own width/height are overridden by the
    /// figure geometry.
    pub fn panel(mut self, mut chart: SvgChart) -> Self {
        chart.width = self.width;
        chart.height = self.panel_height;
        self.panels.push(chart);
        self
    }

    /// Number of panels.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// True when the figure has no panels.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// Renders the stacked document.
    pub fn render(&self) -> Result<String, VizError> {
        if self.panels.is_empty() {
            return Err(VizError::EmptySeries);
        }
        let total_h =
            self.panel_height * self.panels.len() as u32 + self.gap * (self.panels.len() as u32 - 1);
        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
            w = self.width,
            h = total_h
        );
        for (i, panel) in self.panels.iter().enumerate() {
            let y = i as u32 * (self.panel_height + self.gap);
            let inner = panel.render()?;
            // Strip the inner document's <svg> wrapper and nest it.
            let body = inner
                .strip_prefix('<')
                .and_then(|s| s.split_once('>'))
                .map(|(_, rest)| rest.trim_end_matches("</svg>"))
                .unwrap_or("");
            let _ = write!(
                out,
                r#"<g transform="translate(0 {y})">{body}</g>"#
            );
        }
        out.push_str("</svg>");
        Ok(out)
    }

    /// Renders and writes the figure to `path`.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
        let svg = self.render()?;
        std::fs::write(path, svg)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svg::SvgSeries;

    fn chart(label: &str) -> SvgChart {
        let data: Vec<f64> = (0..64).map(|i| (i as f64 / 5.0).cos()).collect();
        SvgChart::new(10, 10)
            .title(label)
            .series(SvgSeries::from_values(label, &data))
    }

    #[test]
    fn stacks_panels_with_offsets() {
        let fig = Figure::new(640, 200)
            .panel(chart("raw"))
            .panel(chart("asap"))
            .panel(chart("oversmoothed"));
        assert_eq!(fig.len(), 3);
        let svg = fig.render().unwrap();
        assert!(svg.contains(r#"height="612""#), "3*200 + 2*6 gap");
        assert!(svg.contains("translate(0 0)"));
        assert!(svg.contains("translate(0 206)"));
        assert!(svg.contains("translate(0 412)"));
        assert!(svg.contains("raw"));
        assert!(svg.contains("oversmoothed"));
        // Exactly one outer svg element.
        assert_eq!(svg.matches("<svg").count(), 1);
        assert_eq!(svg.matches("</svg>").count(), 1);
    }

    #[test]
    fn panel_geometry_overrides_chart_geometry() {
        let fig = Figure::new(800, 150).panel(chart("x"));
        let svg = fig.render().unwrap();
        assert!(svg.contains(r#"width="800""#));
        assert!(svg.contains(r#"height="150""#));
    }

    #[test]
    fn empty_figure_errors() {
        assert_eq!(
            Figure::new(640, 200).render().unwrap_err(),
            VizError::EmptySeries
        );
    }

    #[test]
    fn write_to_creates_file() {
        let dir = std::env::temp_dir().join("asap_viz_fig_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.svg");
        Figure::new(320, 120)
            .panel(chart("p"))
            .write_to(&path)
            .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_file(&path).ok();
    }
}
