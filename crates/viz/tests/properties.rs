//! Property-based tests for the rendering substrate.
//!
//! Rendering must be *total* over finite inputs: any finite series, any
//! sane geometry, produces well-formed output without panicking. These
//! properties matter because chart code sits at the end of every pipeline
//! — a panic here takes down a dashboard on exactly the anomalous data the
//! operator most needs to see.

use asap_viz::{nice_ticks, sparkline, LinearScale, SvgChart, SvgSeries, TerminalChart};
use proptest::prelude::*;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e12..1.0e12f64, 1..max_len)
}

proptest! {
    #[test]
    fn scale_round_trips_within_domain(
        d0 in -1.0e9..1.0e9f64,
        span in 1.0e-3..1.0e9f64,
        r0 in -1.0e4..1.0e4f64,
        rspan in 1.0..1.0e4f64,
        t in 0.0..1.0f64,
    ) {
        let s = LinearScale::new((d0, d0 + span), (r0, r0 + rspan));
        let v = d0 + t * span;
        let back = s.invert(s.apply(v));
        // Relative tolerance scaled to the domain magnitude.
        let tol = 1e-9 * (v.abs() + span);
        prop_assert!((back - v).abs() <= tol, "{back} vs {v}");
    }

    #[test]
    fn ticks_are_sorted_unique_and_in_range(
        a in -1.0e9..1.0e9f64,
        span in 1.0e-6..1.0e9f64,
        count in 1usize..12,
    ) {
        let (min, max) = (a, a + span);
        let ticks = nice_ticks(min, max, count);
        prop_assert!(!ticks.is_empty(), "non-degenerate range yields ticks");
        for w in ticks.windows(2) {
            prop_assert!(w[0] < w[1], "sorted and unique");
        }
        let step_tol = span * 1e-6;
        for &t in &ticks {
            prop_assert!(t >= min - step_tol && t <= max + step_tol);
        }
    }

    #[test]
    fn terminal_chart_is_total_over_finite_input(
        data in finite_series(400),
        width in 8usize..100,
        height in 2usize..24,
    ) {
        let out = TerminalChart::new(width, height).render(&[&data]).unwrap();
        // Geometry: height rows + axis + x labels.
        prop_assert_eq!(out.lines().count(), height + 2);
        // Every braille row is exactly gutter + 1 + width chars wide.
        let rows: Vec<&str> = out.lines().collect();
        let w0 = rows[0].chars().count();
        for row in rows.iter().take(height) {
            prop_assert_eq!(row.chars().count(), w0);
        }
    }

    #[test]
    fn svg_chart_is_total_and_well_formed(
        data in finite_series(300),
        width in 80u32..1200,
        height in 60u32..600,
    ) {
        let svg = SvgChart::new(width, height)
            .series(SvgSeries::from_values("s", &data))
            .render()
            .unwrap();
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<path").count(), 1);
        // No NaN coordinates ever reach the document.
        prop_assert!(!svg.contains("NaN"));
        prop_assert!(!svg.contains("inf"));
    }

    #[test]
    fn sparkline_length_and_charset(
        data in finite_series(500),
        width in 1usize..120,
    ) {
        let s = sparkline(&data, width);
        prop_assert_eq!(s.chars().count(), width.min(data.len()));
        prop_assert!(s.chars().all(|c| ('▁'..='█').contains(&c) || c == ' '));
    }
}
