//! Visvalingam–Whyatt line simplification (1993) — "simp" in Figure 6.
//!
//! Repeatedly removes the point whose triangle with its two neighbours has
//! the smallest *effective area* until only `target` points remain. A
//! shape-preserving reducer from cartography: like M4 it aims for visual
//! fidelity to the raw polyline, so it keeps noise that ASAP would remove.
//!
//! Implementation: a min-heap of candidate areas with lazy invalidation and
//! a doubly linked index list — O(n log n) overall.

use asap_timeseries::TimeSeriesError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A retained point: original index plus value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplifiedPoint {
    /// Index in the original series.
    pub index: usize,
    /// Value at that index.
    pub value: f64,
}

/// Ordered f64 wrapper for the heap (areas are finite by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Area(f64);

impl Eq for Area {}

impl PartialOrd for Area {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Area {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn triangle_area(x1: f64, y1: f64, x2: f64, y2: f64, x3: f64, y3: f64) -> f64 {
    ((x1 * (y2 - y3) + x2 * (y3 - y1) + x3 * (y1 - y2)) / 2.0).abs()
}

/// Simplifies `data` (x = index, y = value) down to `target` points.
///
/// Endpoints are always retained; `target < 2` is an error, and a target at
/// or above the input length returns the input unchanged.
pub fn visvalingam(data: &[f64], target: usize) -> Result<Vec<SimplifiedPoint>, TimeSeriesError> {
    let n = data.len();
    if n == 0 {
        return Err(TimeSeriesError::Empty);
    }
    if target < 2 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "target",
            message: "Visvalingam-Whyatt must keep at least the two endpoints",
        });
    }
    if target >= n {
        return Ok(data
            .iter()
            .enumerate()
            .map(|(index, &value)| SimplifiedPoint { index, value })
            .collect());
    }

    // Doubly linked list over indices; usize::MAX is the sentinel.
    const NONE: usize = usize::MAX;
    let mut prev: Vec<usize> = (0..n).map(|i| if i == 0 { NONE } else { i - 1 }).collect();
    let mut next: Vec<usize> = (0..n)
        .map(|i| if i + 1 == n { NONE } else { i + 1 })
        .collect();
    let mut alive = vec![true; n];

    let area_of = |i: usize, prev: &[usize], next: &[usize], data: &[f64]| -> f64 {
        let (p, q) = (prev[i], next[i]);
        triangle_area(
            p as f64, data[p], i as f64, data[i], q as f64, data[q],
        )
    };

    // Heap of (area, index, version) with lazy invalidation via versions.
    let mut version = vec![0u32; n];
    let mut heap: BinaryHeap<Reverse<(Area, usize, u32)>> = BinaryHeap::with_capacity(n);
    for i in 1..n - 1 {
        heap.push(Reverse((Area(area_of(i, &prev, &next, data)), i, 0)));
    }

    let mut remaining = n;
    while remaining > target {
        let Some(Reverse((_, i, v))) = heap.pop() else {
            break;
        };
        if !alive[i] || v != version[i] {
            continue; // stale entry
        }
        // Remove point i.
        alive[i] = false;
        remaining -= 1;
        let (p, q) = (prev[i], next[i]);
        next[p] = q;
        prev[q] = p;
        // Recompute neighbours' areas.
        for &j in &[p, q] {
            if j != NONE && j != 0 && j != n - 1 && alive[j] {
                version[j] += 1;
                heap.push(Reverse((
                    Area(area_of(j, &prev, &next, data)),
                    j,
                    version[j],
                )));
            }
        }
    }

    Ok((0..n)
        .filter(|&i| alive[i])
        .map(|index| SimplifiedPoint {
            index,
            value: data[index],
        })
        .collect())
}

/// Convenience: simplified values only (time order).
pub fn visvalingam_values(data: &[f64], target: usize) -> Result<Vec<f64>, TimeSeriesError> {
    Ok(visvalingam(data, target)?.into_iter().map(|p| p.value).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_interior_points_removed_first() {
        // Collinear interior points have zero area: any of them may go, the
        // endpoints never do.
        let data: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let pts = visvalingam(&data, 2).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].index, 0);
        assert_eq!(pts[1].index, 9);
    }

    #[test]
    fn prominent_spike_survives_simplification() {
        let mut data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.05).sin() * 0.1).collect();
        data[50] = 25.0;
        let pts = visvalingam(&data, 5).unwrap();
        assert!(
            pts.iter().any(|p| p.index == 50),
            "the dominant spike must survive: {pts:?}"
        );
    }

    #[test]
    fn exact_target_count() {
        let data: Vec<f64> = (0..500).map(|i| ((i as u64 * 48271) % 233) as f64).collect();
        for target in [2usize, 10, 100, 499, 500] {
            let pts = visvalingam(&data, target).unwrap();
            assert_eq!(pts.len(), target.min(500));
        }
    }

    #[test]
    fn target_above_length_is_identity() {
        let data = vec![1.0, 5.0, 2.0];
        let pts = visvalingam(&data, 10).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].value, 5.0);
    }

    #[test]
    fn output_is_time_ordered() {
        let data: Vec<f64> = (0..200).map(|i| ((i * i) % 31) as f64).collect();
        let pts = visvalingam(&data, 50).unwrap();
        for w in pts.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(visvalingam(&[], 5).is_err());
        assert!(visvalingam(&[1.0, 2.0, 3.0], 1).is_err());
    }

    #[test]
    fn simplification_keeps_large_scale_shape() {
        // Downsampling a clean sine to 50 points must keep its amplitude.
        let data: Vec<f64> = (0..1000)
            .map(|i| (std::f64::consts::TAU * i as f64 / 250.0).sin())
            .collect();
        let vals = visvalingam_values(&data, 50).unwrap();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.95 && min < -0.95);
    }
}
