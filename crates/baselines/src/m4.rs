//! M4 visualization-oriented aggregation (Jugel et al., VLDB 2014).
//!
//! M4 splits the series into one group per pixel column and keeps, for each
//! group, the **first, last, minimum and maximum** points (with their
//! original time positions). Rasterizing the result reproduces the
//! pixel-perfect line rendering of the raw data — the opposite design goal
//! from ASAP, which deliberately "distorts" the plot to highlight
//! deviations (§6): M4 has near-zero pixel error (Table 4) but does not
//! remove any visual noise.

use asap_timeseries::TimeSeriesError;

/// A retained point: original index plus value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct M4Point {
    /// Index in the original series.
    pub index: usize,
    /// Value at that index.
    pub value: f64,
}

/// Reduces `data` to at most `4 · width` points: first/last/min/max per
/// pixel column, in time order with duplicates removed.
pub fn m4_aggregate(data: &[f64], width: usize) -> Result<Vec<M4Point>, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if width == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "width",
            message: "M4 needs at least one pixel column",
        });
    }
    let n = data.len();
    let mut out: Vec<M4Point> = Vec::with_capacity(4 * width.min(n));
    let mut col_start = 0usize;
    for col in 0..width {
        let col_end = ((col + 1) * n).div_ceil(width).min(n);
        if col_start >= col_end {
            continue;
        }
        let slice = &data[col_start..col_end];
        let mut min_i = 0usize;
        let mut max_i = 0usize;
        for (i, &v) in slice.iter().enumerate() {
            if v < slice[min_i] {
                min_i = i;
            }
            if v > slice[max_i] {
                max_i = i;
            }
        }
        let mut picks = [0usize, min_i, max_i, slice.len() - 1];
        picks.sort_unstable();
        for (k, &p) in picks.iter().enumerate() {
            if k > 0 && picks[k - 1] == p {
                continue; // dedup within the column
            }
            out.push(M4Point {
                index: col_start + p,
                value: slice[p],
            });
        }
        col_start = col_end;
    }
    Ok(out)
}

/// Convenience: the M4 values only (time order), for metrics that operate
/// on plain series.
pub fn m4_values(data: &[f64], width: usize) -> Result<Vec<f64>, TimeSeriesError> {
    Ok(m4_aggregate(data, width)?.into_iter().map(|p| p.value).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_extremes_of_every_column() {
        let data: Vec<f64> = (0..100)
            .map(|i| if i == 37 { 100.0 } else if i == 61 { -50.0 } else { (i as f64).sin() })
            .collect();
        let pts = m4_aggregate(&data, 10).unwrap();
        assert!(pts.iter().any(|p| p.value == 100.0 && p.index == 37));
        assert!(pts.iter().any(|p| p.value == -50.0 && p.index == 61));
    }

    #[test]
    fn output_is_time_ordered_and_bounded() {
        let data: Vec<f64> = (0..1000).map(|i| ((i as u64 * 2654435761) % 997) as f64).collect();
        let pts = m4_aggregate(&data, 50).unwrap();
        assert!(pts.len() <= 200);
        for w in pts.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn first_and_last_points_survive() {
        let data: Vec<f64> = (0..313).map(|i| i as f64 * 0.5).collect();
        let pts = m4_aggregate(&data, 7).unwrap();
        assert_eq!(pts.first().unwrap().index, 0);
        assert_eq!(pts.last().unwrap().index, 312);
    }

    #[test]
    fn monotone_column_keeps_two_points() {
        // In a monotone column, first == min and last == max: dedup leaves 2.
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let pts = m4_aggregate(&data, 1).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].index, 0);
        assert_eq!(pts[1].index, 9);
    }

    #[test]
    fn width_larger_than_series_keeps_all_points() {
        let data = vec![3.0, 1.0, 2.0];
        let pts = m4_aggregate(&data, 10).unwrap();
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, data);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(m4_aggregate(&[], 5).is_err());
        assert!(m4_aggregate(&[1.0], 0).is_err());
    }

    #[test]
    fn m4_preserves_roughness_unlike_smoothing() {
        // M4 is pixel-faithful: it keeps extremes, so the plot stays rough.
        let data: Vec<f64> = (0..800)
            .map(|i| (i as f64 * 0.1).sin() + if i % 2 == 0 { 0.6 } else { -0.6 })
            .collect();
        let m4 = m4_values(&data, 100).unwrap();
        let sma = asap_timeseries::sma(&data, 8).unwrap();
        let r_m4 = asap_timeseries::roughness(&m4).unwrap();
        let r_sma = asap_timeseries::roughness(&sma).unwrap();
        assert!(r_m4 > 3.0 * r_sma, "M4 {r_m4} vs SMA {r_sma}");
    }
}
