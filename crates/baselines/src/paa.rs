//! Piecewise Aggregate Approximation (Keogh et al., KAIS 2001).
//!
//! PAA divides the series into `segments` equal-width frames and replaces
//! each frame by its mean. The paper compares against PAA100 (100 frames)
//! and PAA800 (800 frames) — unlike ASAP, PAA's reduction target is fixed
//! by the segment count rather than chosen to optimize a visual metric.

use asap_timeseries::TimeSeriesError;

/// Reduces `data` to `segments` frame means.
///
/// Frame boundaries follow the standard fractional assignment
/// `frame(i) = ⌊i · segments / n⌋`, which keeps frames within one point of
/// equal width even when `segments` does not divide `n`. When
/// `segments ≥ n` the series is returned unchanged.
pub fn paa(data: &[f64], segments: usize) -> Result<Vec<f64>, TimeSeriesError> {
    if data.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if segments == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "segments",
            message: "PAA needs at least one segment",
        });
    }
    let n = data.len();
    if segments >= n {
        return Ok(data.to_vec());
    }
    let mut sums = vec![0.0f64; segments];
    let mut counts = vec![0usize; segments];
    for (i, &v) in data.iter().enumerate() {
        let f = i * segments / n;
        sums[f] += v;
        counts[f] += 1;
    }
    Ok(sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| s / c as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_evenly_when_possible() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let out = paa(&data, 3).unwrap();
        assert_eq!(out, vec![1.5, 5.5, 9.5]);
    }

    #[test]
    fn handles_non_divisible_lengths() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let out = paa(&data, 3).unwrap();
        assert_eq!(out.len(), 3);
        // Frames: indices 0..=3 (i*3/10<1 for i<4), 4..=6, 7..=9.
        assert!((out[0] - 1.5).abs() < 1e-12);
        assert!((out[1] - 5.0).abs() < 1e-12);
        assert!((out[2] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn too_many_segments_is_identity() {
        let data = vec![1.0, 2.0, 3.0];
        assert_eq!(paa(&data, 5).unwrap(), data);
        assert_eq!(paa(&data, 3).unwrap(), data);
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(paa(&[], 3).is_err());
        assert!(paa(&[1.0], 0).is_err());
    }

    #[test]
    fn mean_is_preserved_on_even_splits() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin()).collect();
        let out = paa(&data, 100).unwrap();
        let mean_in = data.iter().sum::<f64>() / 1000.0;
        let mean_out = out.iter().sum::<f64>() / 100.0;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn paa_smooths_less_aggressively_with_more_segments() {
        let data: Vec<f64> = (0..800)
            .map(|i| (i as f64 * 0.2).sin() + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let p100 = paa(&data, 100).unwrap();
        let p800 = paa(&data, 800).unwrap();
        let r100 = asap_timeseries::roughness(&p100).unwrap();
        let r800 = asap_timeseries::roughness(&p800).unwrap();
        assert!(r100 < r800, "PAA100 {r100} should be smoother than PAA800 {r800}");
    }
}
