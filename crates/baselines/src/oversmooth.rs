//! The "oversmoothed" baseline of the user studies (§5.1).
//!
//! The paper's upper anchor applies an SMA "with a window size of ¼ of the
//! number of points" — deliberately past the kurtosis-preserving sweet
//! spot, so short- and medium-scale structure is erased. It wins only when
//! the deviation of interest is itself extremely long-scale (the Temp
//! dataset's multi-decade warming trend, Figure 7).

use asap_timeseries::{sma, TimeSeriesError};

/// Applies the user-study oversmoothing policy: SMA with `window = n / 4`
/// (at least 2).
pub fn oversmooth(data: &[f64]) -> Result<Vec<f64>, TimeSeriesError> {
    if data.len() < 8 {
        return Err(TimeSeriesError::TooShort {
            required: 8,
            actual: data.len(),
        });
    }
    let window = (data.len() / 4).max(2);
    sma(data, window)
}

/// The window the oversmoothing policy would use for a series of `n`
/// points.
pub fn oversmooth_window(n: usize) -> usize {
    (n / 4).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_a_quarter_of_length() {
        assert_eq!(oversmooth_window(800), 200);
        assert_eq!(oversmooth_window(9), 2);
    }

    #[test]
    fn output_length_matches_sma_contract() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let out = oversmooth(&data).unwrap();
        assert_eq!(out.len(), 100 - 25 + 1);
    }

    #[test]
    fn is_smoother_than_a_kurtosis_preserving_window() {
        let data: Vec<f64> = (0..800)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 32.0).sin()
                    + 0.3 * if i % 2 == 0 { 1.0 } else { -1.0 }
            })
            .collect();
        let over = oversmooth(&data).unwrap();
        // A small window not aligned with the period: leaves residue.
        let moderate = sma(&data, 10).unwrap();
        let r_over = asap_timeseries::roughness(&over).unwrap();
        let r_mod = asap_timeseries::roughness(&moderate).unwrap();
        assert!(r_over < r_mod);
    }

    #[test]
    fn oversmoothing_erases_short_anomalies() {
        // The failure mode that motivates the kurtosis constraint: a
        // one-period dip vanishes under a quarter-length window.
        let n = 800;
        let data: Vec<f64> = (0..n)
            .map(|i| if (400..432).contains(&i) { -5.0 } else { 0.0 })
            .collect();
        let over = oversmooth(&data).unwrap();
        let min_over = over.iter().cloned().fold(f64::MAX, f64::min);
        assert!(min_over > -1.0, "dip should be diluted, got {min_over}");
    }

    #[test]
    fn too_short_errors() {
        assert!(oversmooth(&[1.0; 7]).is_err());
    }
}
