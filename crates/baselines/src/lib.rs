//! Baseline time-series visualization techniques compared against ASAP.
//!
//! §5.1 of the paper compares ASAP to: the original data, M4, the
//! Visvalingam–Whyatt line-simplification algorithm, piecewise aggregate
//! approximation (PAA100 / PAA800), and an oversmoothed plot (SMA with a
//! window of ¼ the series length). Appendix B.1 additionally measures the
//! *pixel error* of each technique. This crate implements all of them:
//!
//! * [`m4`] — visualization-oriented min/max/first/last aggregation (Jugel
//!   et al., VLDB 2014), the pixel-exact downsampler;
//! * [`mod@paa`] — piecewise aggregate approximation (Keogh et al., 2001);
//! * [`mod@visvalingam`] — effective-area line simplification (Visvalingam &
//!   Whyatt, 1993), the "simp" bar in Figure 6;
//! * [`mod@oversmooth`] — the deliberately over-aggressive SMA used as the
//!   upper anchor in the user studies;
//! * [`pixel`] — line rasterization and the pixel-error metric of Table 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod m4;
pub mod oversmooth;
pub mod paa;
pub mod pixel;
pub mod visvalingam;

pub use m4::m4_aggregate;
pub use oversmooth::oversmooth;
pub use paa::paa;
pub use pixel::{pixel_error, rasterize, rasterize_indexed, Raster};
pub use visvalingam::visvalingam;
