//! Line rasterization and the pixel-error metric (Appendix B.1, Table 4).
//!
//! Pixel error measures how differently a reduced series *renders* compared
//! to the raw data: both series are z-scored, drawn as polylines into a
//! binary raster of the same dimensions, and compared. We report the
//! Jaccard distance between the two sets of lit pixels
//! (`|A △ B| / |A ∪ B|`), which reproduces the paper's ordering: M4 and
//! line simplification are near pixel-perfect (~0.02–0.2) while ASAP,
//! which deliberately redraws the plot, sits near 0.9 (the paper reports
//! ASAP "up to 93% worse" at pixel accuracy — by design, §6).

use asap_timeseries::zscore;

/// A binary raster of lit pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raster {
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl Raster {
    /// Creates an empty raster.
    pub fn new(width: usize, height: usize) -> Self {
        Raster {
            width,
            height,
            bits: vec![false; width * height],
        }
    }

    /// Raster width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether pixel `(x, y)` is lit.
    pub fn get(&self, x: usize, y: usize) -> bool {
        self.bits[y * self.width + x]
    }

    fn set(&mut self, x: i64, y: i64) {
        if x >= 0 && (x as usize) < self.width && y >= 0 && (y as usize) < self.height {
            self.bits[y as usize * self.width + x as usize] = true;
        }
    }

    /// Number of lit pixels.
    pub fn lit(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Draws a line segment with Bresenham's algorithm.
    fn line(&mut self, mut x0: i64, mut y0: i64, x1: i64, y1: i64) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x0, y0);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }
}

/// Rasterizes `data` as a z-scored polyline into a `width × height` raster.
///
/// Values are z-scored, clamped to ±3σ, and mapped linearly onto the raster
/// rows; indices are stretched across the full width (the same framing a
/// plotting library applies). Constant series draw a horizontal center
/// line.
pub fn rasterize(data: &[f64], width: usize, height: usize) -> Raster {
    let mut raster = Raster::new(width, height);
    if data.is_empty() || width == 0 || height == 0 {
        return raster;
    }
    let z = zscore(data).unwrap_or_else(|_| vec![0.0; data.len()]);
    const CLAMP: f64 = 3.0;
    let to_row = |v: f64| -> i64 {
        let clamped = v.clamp(-CLAMP, CLAMP);
        // +3 -> row 0 (top), −3 -> bottom row.
        (((CLAMP - clamped) / (2.0 * CLAMP)) * (height.saturating_sub(1)) as f64).round() as i64
    };
    let to_col = |i: usize| -> i64 {
        if data.len() == 1 {
            0
        } else {
            ((i as f64 / (data.len() - 1) as f64) * (width - 1) as f64).round() as i64
        }
    };
    let mut prev = (to_col(0), to_row(z[0]));
    raster.set(prev.0, prev.1);
    for (i, &v) in z.iter().enumerate().skip(1) {
        let cur = (to_col(i), to_row(v));
        raster.line(prev.0, prev.1, cur.0, cur.1);
        prev = cur;
    }
    raster
}

/// Rasterizes a reduced series whose points carry their *original* time
/// indices (M4, Visvalingam–Whyatt), so the polyline lands on the same
/// columns as the raw rendering.
///
/// `n_original` is the length of the raw series the indices refer to; the
/// z-scoring uses the reduced values (the renderer only sees those).
pub fn rasterize_indexed(
    points: &[(usize, f64)],
    n_original: usize,
    width: usize,
    height: usize,
) -> Raster {
    let mut raster = Raster::new(width, height);
    if points.is_empty() || width == 0 || height == 0 || n_original == 0 {
        return raster;
    }
    let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    let z = zscore(&values).unwrap_or_else(|_| vec![0.0; values.len()]);
    const CLAMP: f64 = 3.0;
    let to_row = |v: f64| -> i64 {
        let clamped = v.clamp(-CLAMP, CLAMP);
        (((CLAMP - clamped) / (2.0 * CLAMP)) * (height.saturating_sub(1)) as f64).round() as i64
    };
    let to_col = |i: usize| -> i64 {
        if n_original <= 1 {
            0
        } else {
            ((i as f64 / (n_original - 1) as f64) * (width - 1) as f64).round() as i64
        }
    };
    let mut prev = (to_col(points[0].0), to_row(z[0]));
    raster.set(prev.0, prev.1);
    for (k, &(i, _)) in points.iter().enumerate().skip(1) {
        let cur = (to_col(i), to_row(z[k]));
        raster.line(prev.0, prev.1, cur.0, cur.1);
        prev = cur;
    }
    raster
}

/// Pixel error between a reduced rendering and the raw rendering: the
/// Jaccard distance `|A △ B| / |A ∪ B|` over lit pixels, in `[0, 1]`.
pub fn pixel_error(original: &Raster, reduced: &Raster) -> f64 {
    assert_eq!(original.width, reduced.width, "raster widths differ");
    assert_eq!(original.height, reduced.height, "raster heights differ");
    let mut sym_diff = 0usize;
    let mut union = 0usize;
    for (a, b) in original.bits.iter().zip(&reduced.bits) {
        if *a || *b {
            union += 1;
            if a != b {
                sym_diff += 1;
            }
        }
    }
    if union == 0 {
        0.0
    } else {
        sym_diff as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (std::f64::consts::TAU * i as f64 / 100.0).sin()
                    + 0.4 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn identical_renderings_have_zero_error() {
        let data = noisy(500);
        let a = rasterize(&data, 200, 100);
        let b = rasterize(&data, 200, 100);
        assert_eq!(pixel_error(&a, &b), 0.0);
    }

    #[test]
    fn polyline_is_horizontally_connected() {
        let data = noisy(500);
        let r = rasterize(&data, 100, 50);
        // Every column must have at least one lit pixel (a connected line).
        for x in 0..100 {
            assert!((0..50).any(|y| r.get(x, y)), "gap at column {x}");
        }
    }

    #[test]
    fn constant_series_draws_center_line() {
        let r = rasterize(&[5.0; 100], 50, 21);
        for x in 0..50 {
            assert!(r.get(x, 10));
        }
        assert_eq!(r.lit(), 50);
    }

    #[test]
    fn m4_has_much_lower_pixel_error_than_heavy_smoothing() {
        // Table 4's ordering: M4 ≈ 0.02, ASAP-style smoothing ≈ 0.9.
        let data = noisy(2000);
        let original = rasterize(&data, 200, 100);
        let m4_pts: Vec<(usize, f64)> = crate::m4::m4_aggregate(&data, 200)
            .unwrap()
            .into_iter()
            .map(|p| (p.index, p.value))
            .collect();
        let m4_r = rasterize_indexed(&m4_pts, data.len(), 200, 100);
        let smoothed = asap_timeseries::sma(&data, 100).unwrap();
        let s_r = rasterize(&smoothed, 200, 100);
        let e_m4 = pixel_error(&original, &m4_r);
        let e_s = pixel_error(&original, &s_r);
        assert!(e_m4 < 0.3, "M4 pixel error {e_m4}");
        assert!(e_s > 0.6, "smoothed pixel error {e_s}");
        assert!(e_s > 3.0 * e_m4);
    }

    #[test]
    fn error_is_symmetric_and_bounded() {
        let a = rasterize(&noisy(300), 100, 60);
        let b = rasterize(&noisy(300)[..150], 100, 60);
        let e1 = pixel_error(&a, &b);
        let e2 = pixel_error(&b, &a);
        assert!((e1 - e2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&e1));
    }

    #[test]
    fn empty_rasters_compare_clean() {
        let a = Raster::new(10, 10);
        let b = Raster::new(10, 10);
        assert_eq!(pixel_error(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_dimensions_panic() {
        let a = Raster::new(10, 10);
        let b = Raster::new(20, 10);
        pixel_error(&a, &b);
    }
}
