//! Network front-end for the ASAP reproduction: an event-driven TCP
//! server over one shared [`asap_tsdb::ShardedDb`].
//!
//! The ASAP paper (§2) frames smoothing as an operator pointed at *live*
//! dashboards fed by production telemetry. Every entry point the
//! workspace had so far is in-process; this crate is the missing network
//! layer that turns the engine into a servable system:
//!
//! ```text
//!  telemetry agents            operators / dashboards
//!        │ line protocol             │ text protocol
//!        ▼                           ▼
//!  ┌─ ingest listener ─┐      ┌─ query listener ──┐
//!  │ 1 conn = 1        │      │ SMOOTH RANGE      │
//!  │ StreamIngestor    │      │ SUBSCRIBE (push)  │
//!  │ (cap, back-       │      │ STATS HEALTH      │
//!  │  pressure)        │      │ SNAPSHOT SHUTDOWN │
//!  └────────┬──────────┘      └────────┬──────────┘
//!           │                          │
//!           ▼                          ▼
//!        ┌──────────── ShardedDb ───────────┐   ┌ compaction scheduler ┐
//!        │  shards · reorder · smoothing    │◀──│ Compactor::run_sharded│
//!        └──────────────────────────────────┘   │ jittered ticks       │
//!                                               └──────────────────────┘
//! ```
//!
//! * **I/O core** — by default ([`CoreMode::Event`]) every connection
//!   is a nonblocking state machine swept by a small worker pool:
//!   level-triggered readiness over `WouldBlock`, bounded per-tick read
//!   budgets and buffered writes, so thousands of mostly-idle
//!   connections cost readiness checks rather than threads. `--core
//!   threaded` keeps the legacy thread-per-connection core.
//! * **Ingest listener** — each accepted connection gets its own
//!   [`asap_tsdb::StreamIngestor`] draining the socket with end-to-end
//!   backpressure (a full pipeline stops reading, TCP flow control
//!   stalls the sender); the connection cap bounds pipelines, not
//!   sockets. Clients may wrap payloads in length-prefixed
//!   `BATCH <nbytes>` frames (see [`protocol`]) so one syscall carries
//!   thousands of points. On close the final
//!   [`asap_tsdb::IngestReport`] is written back as one stable
//!   `key=value` line.
//! * **Query/ops protocol** — a line-oriented text protocol (see
//!   [`protocol`]) serving smoothing (`SMOOTH`), range reads (`RANGE`),
//!   live counters (`STATS`, `HEALTH` — aggregated
//!   [`asap_tsdb::StreamProgress`] plus per-shard
//!   series/point/watermark occupancy), snapshots (`SNAPSHOT`), and
//!   graceful shutdown (`SHUTDOWN`).
//! * **Subscriptions** — `SUBSCRIBE <selector> [EVERY <n>]
//!   [ALERT k=<sigma>]` registers a standing streaming-smoothing
//!   subscription fed post-reorder from the ingest apply path; the
//!   server pushes incremental `FRAME` (and edge-triggered `ALERT`)
//!   lines down the same connection until `UNSUBSCRIBE` or disconnect.
//!   Slow subscribers are lag-dropped (bounded per-subscriber outbox)
//!   or disconnected at the write deadline — never allowed to delay
//!   ingest or the drain.
//! * **Compaction scheduler** — a background thread driving
//!   [`asap_tsdb::Compactor::run_sharded`] on jittered ticks
//!   ([`asap_tsdb::Schedule`]), mutually exclusive with snapshot saves,
//!   its cumulative counters surfaced through `STATS`.
//! * **Checkpoint scheduler** — with durability configured, a second
//!   background thread takes *incremental* checkpoints on jittered
//!   ticks ([`asap_tsdb::CheckpointChain`]): each pass writes only the
//!   series that changed since the last one and discards the covered
//!   WAL generations, so checkpoint cost tracks write activity — not
//!   total data — and the log stays bounded at steady state.
//! * **Graceful shutdown** — `SHUTDOWN` (or [`Server::shutdown`]) stops
//!   accepting, finalizes every connection (complete ingest lines
//!   applied, reorder buffers flushed), stops the scheduler, optionally
//!   writes a final snapshot, and returns a [`ServerReport`] — promptly
//!   even when a peer has stopped reading: the drain is bounded by the
//!   poll interval and server-side work, never by client behavior.
//!
//! # Example
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use asap_server::{Server, ServerConfig};
//! use asap_tsdb::ShardedDb;
//!
//! let server = Server::start(ShardedDb::new(), ServerConfig::default()).unwrap();
//! let mut conn = TcpStream::connect(server.ingest_addr()).unwrap();
//! conn.write_all(b"cpu,host=a usage=0.5 1\n").unwrap();
//! conn.shutdown(std::net::Shutdown::Write).unwrap();
//! let mut report = String::new();
//! conn.read_to_string(&mut report).unwrap();
//! assert!(report.contains("points=1"), "{report}");
//! let report = server.shutdown();
//! assert_eq!(report.ingest.points, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod conn;
mod event;
pub mod protocol;
mod scheduler;
mod server;
mod subscribe;
mod threaded;

pub use server::{
    CheckpointConfig, CheckpointStats, CompactionClock, CompactionConfig, CompactionStats,
    CoreMode, IngestTotals, Server, ServerConfig, ServerError, ServerReport,
};
