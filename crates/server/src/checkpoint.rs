//! The background checkpoint scheduler: a thread driving incremental
//! [`asap_tsdb::CheckpointChain`] checkpoints on jittered wall-clock
//! ticks, so a long-running durable server truncates its write-ahead
//! log continuously instead of only at shutdown.
//!
//! Each tick the scheduler (1) draws the next delay from the configured
//! [`asap_tsdb::Schedule`] with its own seeded RNG, (2) sleeps
//! interruptibly — a server drain wakes it immediately, (3) takes the
//! snapshot gate so a checkpoint never overlaps a compaction pass or a
//! client `SNAPSHOT` save (and vice versa), and (4) runs one pass via
//! [`crate::server::Shared::run_checkpoint`]: rotate the WAL, write a
//! delta link holding only the series that changed since the previous
//! pass (or re-base once the chain reaches its configured depth),
//! commit the chain manifest, and discard the covered log generations.
//! The outcome folds into the server's [`crate::CheckpointStats`]
//! (surfaced through `STATS` as `checkpoint.*`).
//!
//! Because every pass discards the generations it covers, a
//! steady-state server holds at most the chain depth plus one live WAL
//! generation per shard — the log stops growing with uptime.
//!
//! The thread's lifecycle is tied to the server's: spawned by
//! [`crate::Server::start`], joined during the drain after every ingest
//! connection has flushed; the drain then takes one final checkpoint so
//! the shutdown state lands in the chain too.

use asap_tsdb::obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::server::{CheckpointConfig, Shared};

/// The checkpoint scheduler thread body.
pub(crate) fn run(shared: &Shared, config: &CheckpointConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    loop {
        let delay = config.schedule.next_delay(&mut rng);
        if shared.wait_drain_timeout(delay) {
            break;
        }
        // Pause while compaction or a snapshot save holds the gate;
        // re-check the drain flag afterwards so shutdown is never
        // delayed by a full pass (the drain takes its own final
        // checkpoint after joining this thread).
        let _gate = shared.snapshot_gate();
        if shared.is_draining() {
            break;
        }
        if let Err(e) = shared.run_checkpoint() {
            obs::warn("checkpoint", "pass_failed", &[("error", &e)]);
        }
    }
}
