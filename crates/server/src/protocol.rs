//! The line-oriented text protocol of the query/ops port.
//!
//! One request per line, whitespace-separated tokens; one response per
//! request. Responses are machine-parseable:
//!
//! * errors are a single line `ERR <message>` (the message never contains
//!   a newline);
//! * single-line successes start with `OK `;
//! * multi-line successes start with `OK <count>` (or `OK stats`), carry
//!   `count` self-describing sections, and always terminate with a lone
//!   `END` line, so clients can stream-parse without knowing the shape of
//!   every section.
//!
//! Grammar (verbs are case-insensitive, arguments are not):
//!
//! ```text
//! RANGE       <selector> <start> <end> [<bucket> [<agg>]]
//! SMOOTH      <selector> <start> <end> <bucket> [<resolution>]
//! SUBSCRIBE   <selector> [EVERY <n>] [ALERT k=<sigma>]
//! UNSUBSCRIBE [<id>]
//! STATS
//! METRICS
//! HEALTH
//! SNAPSHOT <name>
//! SHUTDOWN
//! ```
//!
//! `SUBSCRIBE` registers a standing smoothing subscription: the server
//! answers `OK subscribed <id> ...` (single line) and from then on pushes
//! unsolicited lines onto this connection as ingest advances:
//!
//! ```text
//! FRAME <key> seq=<points> window=<w> n=<len> <v1,v2,...>
//! ALERT <key> seq=<points> dir=<up|down> run=<len> mean_z=<z>
//! ```
//!
//! `seq` is the per-series count of raw points ingested when the frame
//! was emitted, `window` the chosen smoothing window (in panes), and the
//! trailing token the comma-joined smoothed series (shortest-roundtrip
//! `f64`, like data lines). `ALERT` lines appear only for subscriptions
//! created with `ALERT k=<sigma>`, and are edge-triggered: one line per
//! sustained deviation, not one per frame. Push lines are interleaved
//! between responses at line granularity only — a response is never
//! split by a push. `UNSUBSCRIBE <id>` cancels one subscription,
//! `UNSUBSCRIBE` cancels every subscription this connection owns, and
//! disconnect tears all of them down.
//!
//! `SNAPSHOT <name>` resolves inside the server's configured snapshot
//! directory — a relative path with plain components only. Absolute
//! paths and `..` are refused, and the whole command is refused when no
//! directory is configured: query clients are unauthenticated, so they
//! never get to pick server filesystem paths.
//!
//! `<selector>` picks series: `*` (every series), `metric`,
//! `metric{k=v,k2=*}` (tag `k` equal to `v`, tag `k2` present with any
//! value), or `*{k=v}` / `{k=v}` (any metric, tag-filtered). Selectors
//! are one token — metric names and tag values containing whitespace are
//! not addressable over this protocol. `<agg>` is one of `mean`, `min`,
//! `max`, `sum`, `count`, `first`, `last`. Timestamps and buckets are
//! plain `i64` in the store's native units.
//!
//! Rollup series — the compactor's pre-aggregates, tagged
//! [`asap_tsdb::ROLLUP_TAG`] — are infrastructure: `RANGE` and `SMOOTH`
//! exclude them unless the selector takes a position on the tag itself
//! (e.g. `cpu{__rollup__=60}` or `*{__rollup__=*}`), so `*` means
//! "every *raw* series" rather than double-counting pre-aggregated
//! copies.
//!
//! `RANGE`/`SMOOTH` data sections are
//! `SERIES <key> <n> [k=v ...]` followed by `n` lines of
//! `<timestamp> <value>`; values render through Rust's shortest-roundtrip
//! `f64` display, so `parse::<f64>()` reconstructs them exactly.
//!
//! # Ingest-port framing
//!
//! The ingest port speaks the line protocol
//! ([`mod@asap_tsdb::ingest`]) with one optional frame type layered
//! on top:
//!
//! ```text
//! BATCH <nbytes>\n<nbytes bytes of payload>
//! ```
//!
//! The header verb is case-insensitive and `<nbytes>` is a plain
//! decimal `u64` (a trailing `\r` before the newline is tolerated).
//! The payload is a *byte window* of the ordinary line-protocol
//! stream, passed through verbatim — it may end mid-line, in which
//! case the line continues with the bytes that follow the frame (the
//! next frame's payload, or plain bytes). Headers are recognized at
//! exactly three positions: the start of the stream, immediately after
//! a `\n` in the unframed stream, and immediately after a frame's
//! payload; header-looking bytes anywhere else (including *inside* a
//! payload) are data. Batching exists so one syscall can carry
//! thousands of points; it changes how bytes arrive, never what they
//! mean, so `plain lines ≡ the same bytes wrapped in frames` holds for
//! any framing of the stream (provided a plain-bytes line continuation
//! after a frame doesn't itself spell a valid header — split inside a
//! frame instead if your data can contain `BATCH <n>` lines). A line
//! that merely *looks* like a header but fails to parse (`BATCH ten`,
//! `BATCH `) degrades to an ordinary data line and surfaces as a parse
//! failure downstream, like any other malformed record.

use asap_core::{Alert, Direction, Frame};
use asap_tsdb::{Aggregator, DataPoint, Selector, SeriesKey, SmoothedFrame};

/// Display resolution (target pixel width) `SMOOTH` uses when the
/// request does not name one — the paper's canonical chart width.
pub const DEFAULT_RESOLUTION: usize = 800;

/// One parsed request of the query/ops protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `RANGE <selector> <start> <end> [<bucket> [<agg>]]` — raw or
    /// bucket-aggregated points of every matching series.
    Range {
        /// Which series to read.
        selector: Selector,
        /// Inclusive scan start.
        start: i64,
        /// Exclusive scan end.
        end: i64,
        /// Bucket width; `None` returns raw points.
        bucket: Option<i64>,
        /// Per-bucket reduction (ignored for raw scans).
        aggregator: Aggregator,
    },
    /// `SMOOTH <selector> <start> <end> <bucket> [<resolution>]` — the
    /// ASAP-smoothed frame of every matching series.
    Smooth {
        /// Which series to smooth.
        selector: Selector,
        /// Inclusive interval start.
        start: i64,
        /// Exclusive interval end.
        end: i64,
        /// Grid step handed to the query→ASAP bridge.
        bucket: i64,
        /// Target display resolution (pixels).
        resolution: usize,
    },
    /// `STATS` — the full counter dump (ingest, compaction, per-shard).
    Stats,
    /// `METRICS` — the same registry in Prometheus text exposition
    /// (counters, gauges, and full latency histograms).
    Metrics,
    /// `HEALTH` — a single-line liveness summary (`OK healthy ...`, or
    /// `DEGRADED ...` while a subsystem's latest pass is failing).
    Health,
    /// `SNAPSHOT <name>` — write a v2 snapshot of the whole store into
    /// the server's configured snapshot directory.
    Snapshot {
        /// Destination relative to the snapshot directory; the server
        /// refuses absolute paths and `..` components.
        path: String,
    },
    /// `SUBSCRIBE <selector> [EVERY <n>] [ALERT k=<sigma>]` — register a
    /// standing smoothing subscription pushing `FRAME` (and optionally
    /// `ALERT`) lines onto this connection.
    Subscribe {
        /// Which series to watch (matched against series created later,
        /// too).
        selector: Selector,
        /// Refresh interval in raw points per series; `None` takes the
        /// server default.
        every: Option<usize>,
        /// Deviation-alert threshold in standard deviations; `None`
        /// disables `ALERT` lines.
        alert: Option<f64>,
    },
    /// `UNSUBSCRIBE [<id>]` — cancel one subscription by id, or every
    /// subscription this connection owns.
    Unsubscribe {
        /// The id `OK subscribed` reported; `None` cancels all.
        id: Option<u64>,
    },
    /// `SHUTDOWN` — request a graceful server shutdown.
    Shutdown,
}

/// Parses one selector token; see the module docs for the grammar.
pub fn parse_selector(token: &str) -> Result<Selector, String> {
    let (metric, tags) = match token.find('{') {
        None => (token, None),
        Some(open) => {
            let Some(inner) = token[open + 1..].strip_suffix('}') else {
                return Err(format!("selector `{token}`: unterminated tag block"));
            };
            (&token[..open], Some(inner))
        }
    };
    let mut selector = match metric {
        "" | "*" => Selector::any(),
        name => Selector::metric(name),
    };
    if let Some(tags) = tags {
        for clause in tags.split(',') {
            if clause.is_empty() {
                return Err(format!("selector `{token}`: empty tag clause"));
            }
            let Some((key, value)) = clause.split_once('=') else {
                return Err(format!(
                    "selector `{token}`: tag clause `{clause}` is not key=value"
                ));
            };
            if key.is_empty() {
                return Err(format!("selector `{token}`: empty tag key"));
            }
            selector = if value == "*" {
                selector.tag_present(key)
            } else {
                selector.tag_eq(key, value)
            };
        }
    }
    Ok(selector)
}

fn parse_aggregator(token: &str) -> Result<Aggregator, String> {
    match token.to_ascii_lowercase().as_str() {
        "mean" => Ok(Aggregator::Mean),
        "min" => Ok(Aggregator::Min),
        "max" => Ok(Aggregator::Max),
        "sum" => Ok(Aggregator::Sum),
        "count" => Ok(Aggregator::Count),
        "first" => Ok(Aggregator::First),
        "last" => Ok(Aggregator::Last),
        other => Err(format!(
            "unknown aggregator `{other}` (mean|min|max|sum|count|first|last)"
        )),
    }
}

fn parse_i64(token: &str, what: &str) -> Result<i64, String> {
    token
        .parse()
        .map_err(|_| format!("{what} `{token}` is not an integer"))
}

fn parse_usize(token: &str, what: &str) -> Result<usize, String> {
    token
        .parse()
        .map_err(|_| format!("{what} `{token}` is not a non-negative integer"))
}

/// Parses one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut tokens = line.split_whitespace();
    let Some(verb) = tokens.next() else {
        return Err("empty command".to_owned());
    };
    let args: Vec<&str> = tokens.collect();
    let arity = |lo: usize, hi: usize, usage: &str| -> Result<(), String> {
        if args.len() < lo || args.len() > hi {
            Err(format!("usage: {usage}"))
        } else {
            Ok(())
        }
    };
    match verb.to_ascii_uppercase().as_str() {
        "RANGE" => {
            arity(3, 5, "RANGE <selector> <start> <end> [<bucket> [<agg>]]")?;
            let bucket = match args.get(3) {
                None => None,
                Some(b) => Some(parse_i64(b, "bucket")?),
            };
            Ok(Command::Range {
                selector: parse_selector(args[0])?,
                start: parse_i64(args[1], "start")?,
                end: parse_i64(args[2], "end")?,
                bucket,
                aggregator: match args.get(4) {
                    None => Aggregator::Mean,
                    Some(a) => parse_aggregator(a)?,
                },
            })
        }
        "SMOOTH" => {
            arity(4, 5, "SMOOTH <selector> <start> <end> <bucket> [<resolution>]")?;
            Ok(Command::Smooth {
                selector: parse_selector(args[0])?,
                start: parse_i64(args[1], "start")?,
                end: parse_i64(args[2], "end")?,
                bucket: parse_i64(args[3], "bucket")?,
                resolution: match args.get(4) {
                    None => DEFAULT_RESOLUTION,
                    Some(r) => parse_usize(r, "resolution")?,
                },
            })
        }
        "STATS" => {
            arity(0, 0, "STATS")?;
            Ok(Command::Stats)
        }
        "METRICS" => {
            arity(0, 0, "METRICS")?;
            Ok(Command::Metrics)
        }
        "HEALTH" => {
            arity(0, 0, "HEALTH")?;
            Ok(Command::Health)
        }
        "SNAPSHOT" => {
            arity(1, 1, "SNAPSHOT <name>")?;
            Ok(Command::Snapshot {
                path: args[0].to_owned(),
            })
        }
        "SUBSCRIBE" => {
            let usage = "SUBSCRIBE <selector> [EVERY <n>] [ALERT k=<sigma>]";
            arity(1, 5, usage)?;
            let selector = parse_selector(args[0])?;
            let mut every = None;
            let mut alert = None;
            let mut rest = args[1..].iter();
            while let Some(word) = rest.next() {
                match word.to_ascii_uppercase().as_str() {
                    "EVERY" if every.is_none() => {
                        let n = rest.next().ok_or_else(|| format!("usage: {usage}"))?;
                        let n = parse_usize(n, "EVERY interval")?;
                        if n == 0 {
                            return Err("EVERY interval must be positive".to_owned());
                        }
                        every = Some(n);
                    }
                    "ALERT" if alert.is_none() => {
                        let clause = rest.next().ok_or_else(|| format!("usage: {usage}"))?;
                        let sigma = clause
                            .strip_prefix("k=")
                            .ok_or_else(|| format!("ALERT clause `{clause}` is not k=<sigma>"))?;
                        let k: f64 = sigma
                            .parse()
                            .map_err(|_| format!("ALERT sigma `{sigma}` is not a number"))?;
                        if !(k > 0.0 && k.is_finite()) {
                            return Err("ALERT sigma must be positive and finite".to_owned());
                        }
                        alert = Some(k);
                    }
                    _ => return Err(format!("usage: {usage}")),
                }
            }
            Ok(Command::Subscribe {
                selector,
                every,
                alert,
            })
        }
        "UNSUBSCRIBE" => {
            arity(0, 1, "UNSUBSCRIBE [<id>]")?;
            let id = match args.first() {
                None => None,
                Some(token) => Some(
                    token
                        .parse()
                        .map_err(|_| format!("subscription id `{token}` is not an integer"))?,
                ),
            };
            Ok(Command::Unsubscribe { id })
        }
        "SHUTDOWN" => {
            arity(0, 0, "SHUTDOWN")?;
            Ok(Command::Shutdown)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses an ingest-port `BATCH` frame header: the bytes of one line
/// *without* the trailing newline (a trailing `\r` is tolerated).
/// Returns the payload length in bytes, or `None` when the line is not
/// a valid header — the server's framer then treats the bytes as an
/// ordinary data line (see the module docs).
pub fn parse_batch_header(line: &[u8]) -> Option<u64> {
    let line = line.strip_suffix(b"\r").unwrap_or(line);
    if line.len() < 7 || !line[..6].eq_ignore_ascii_case(b"BATCH ") {
        return None;
    }
    let digits = &line[6..];
    if !digits.iter().all(u8::is_ascii_digit) {
        return None;
    }
    std::str::from_utf8(digits).ok()?.parse().ok()
}

/// Renders an error response: a single `ERR` line with newlines in the
/// message flattened so the response stays one line.
pub fn render_error(message: &str) -> String {
    format!("ERR {}\n", message.replace('\n', "; "))
}

/// Renders a `RANGE` result: `OK <n>`, one `SERIES <key> <n_points>`
/// section per series with `<timestamp> <value>` lines, then `END`.
pub fn render_range(results: &[(SeriesKey, Vec<DataPoint>)]) -> String {
    let mut out = format!("OK {}\n", results.len());
    for (key, points) in results {
        out.push_str(&format!("SERIES {key} {}\n", points.len()));
        for p in points {
            out.push_str(&format!("{} {}\n", p.timestamp, p.value));
        }
    }
    out.push_str("END\n");
    out
}

/// Renders a `SMOOTH` result: `OK <n>`, one
/// `SERIES <key> <n_points> window=<w> pixel_ratio=<r> roughness=<σ>`
/// section per series with the smoothed `<timestamp> <value>` lines,
/// then `END`.
pub fn render_smooth(frames: &[(SeriesKey, SmoothedFrame)]) -> String {
    let mut out = format!("OK {}\n", frames.len());
    for (key, frame) in frames {
        out.push_str(&format!(
            "SERIES {key} {} window={} pixel_ratio={} roughness={}\n",
            frame.smoothed_points.len(),
            frame.result.window,
            frame.result.pixel_ratio,
            frame.result.roughness,
        ));
        for p in &frame.smoothed_points {
            out.push_str(&format!("{} {}\n", p.timestamp, p.value));
        }
    }
    out.push_str("END\n");
    out
}

/// Renders one pushed subscription frame:
/// `FRAME <key> seq=<points> window=<w> n=<len> <v1,v2,...>`.
///
/// Values render through Rust's shortest-roundtrip `f64` display like
/// data lines, so the line is byte-deterministic for a given frame —
/// the property the push-vs-poll oracle tests pin.
pub fn render_frame(key: &SeriesKey, frame: &Frame) -> String {
    let mut out = format!(
        "FRAME {key} seq={} window={} n={} ",
        frame.points_ingested,
        frame.outcome.window,
        frame.smoothed.len(),
    );
    let mut first = true;
    for v in &frame.smoothed {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&v.to_string());
    }
    out.push('\n');
    out
}

/// Renders one pushed deviation alert:
/// `ALERT <key> seq=<points> dir=<up|down> run=<len> mean_z=<z>`.
pub fn render_alert(key: &SeriesKey, alert: &Alert) -> String {
    format!(
        "ALERT {key} seq={} dir={} run={} mean_z={}\n",
        alert.points_ingested,
        match alert.direction {
            Direction::Up => "up",
            Direction::Down => "down",
        },
        alert.run_len,
        alert.mean_z,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_grammar_round_trips_onto_keys() {
        let k = SeriesKey::metric("cpu").with_tag("host", "a").with_tag("dc", "west");
        for (token, matches) in [
            ("*", true),
            ("cpu", true),
            ("mem", false),
            ("cpu{host=a}", true),
            ("cpu{host=b}", false),
            ("cpu{host=a,dc=west}", true),
            ("cpu{host=*}", true),
            ("cpu{rack=*}", false),
            ("*{dc=west}", true),
            ("{dc=west}", true),
            ("{dc=east}", false),
        ] {
            let sel = parse_selector(token).unwrap();
            assert_eq!(sel.matches(&k), matches, "selector `{token}`");
        }
    }

    #[test]
    fn bad_selectors_are_rejected_with_reasons() {
        for token in ["cpu{host=a", "cpu{host}", "cpu{=a}", "cpu{,}", "cpu{}"] {
            let err = parse_selector(token).unwrap_err();
            assert!(err.contains("selector"), "`{token}` -> {err}");
        }
    }

    #[test]
    fn commands_parse_with_defaults_and_case_insensitive_verbs() {
        assert_eq!(
            parse_command("range * 0 100").unwrap(),
            Command::Range {
                selector: parse_selector("*").unwrap(),
                start: 0,
                end: 100,
                bucket: None,
                aggregator: Aggregator::Mean,
            }
        );
        assert_eq!(
            parse_command("RANGE cpu{host=a} -50 100 10 max").unwrap(),
            Command::Range {
                selector: parse_selector("cpu{host=a}").unwrap(),
                start: -50,
                end: 100,
                bucket: Some(10),
                aggregator: Aggregator::Max,
            }
        );
        assert_eq!(
            parse_command("smooth cpu 0 1000 10").unwrap(),
            Command::Smooth {
                selector: parse_selector("cpu").unwrap(),
                start: 0,
                end: 1000,
                bucket: 10,
                resolution: DEFAULT_RESOLUTION,
            }
        );
        assert_eq!(
            parse_command("SMOOTH cpu 0 1000 10 320").unwrap(),
            Command::Smooth {
                selector: parse_selector("cpu").unwrap(),
                start: 0,
                end: 1000,
                bucket: 10,
                resolution: 320,
            }
        );
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("metrics").unwrap(), Command::Metrics);
        assert_eq!(parse_command("Health").unwrap(), Command::Health);
        assert_eq!(
            parse_command("SNAPSHOT /tmp/a.snap").unwrap(),
            Command::Snapshot {
                path: "/tmp/a.snap".to_owned()
            }
        );
        assert_eq!(parse_command("shutdown").unwrap(), Command::Shutdown);
    }

    #[test]
    fn malformed_commands_report_usage() {
        for (line, needle) in [
            ("", "empty command"),
            ("FLY * 0 10", "unknown command"),
            ("RANGE *", "usage:"),
            ("RANGE * 0 ten", "not an integer"),
            ("RANGE * 0 10 5 median", "unknown aggregator"),
            ("SMOOTH * 0 10", "usage:"),
            ("SMOOTH * 0 10 5 -3", "not a non-negative integer"),
            ("STATS now", "usage:"),
            ("METRICS now", "usage:"),
            ("SNAPSHOT", "usage:"),
        ] {
            let err = parse_command(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> {err}");
        }
    }

    #[test]
    fn subscribe_grammar_parses_clauses_in_any_order() {
        assert_eq!(
            parse_command("SUBSCRIBE cpu{host=a}").unwrap(),
            Command::Subscribe {
                selector: parse_selector("cpu{host=a}").unwrap(),
                every: None,
                alert: None,
            }
        );
        assert_eq!(
            parse_command("subscribe * every 500 alert k=1.5").unwrap(),
            Command::Subscribe {
                selector: parse_selector("*").unwrap(),
                every: Some(500),
                alert: Some(1.5),
            }
        );
        assert_eq!(
            parse_command("SUBSCRIBE mem ALERT k=2 EVERY 10").unwrap(),
            Command::Subscribe {
                selector: parse_selector("mem").unwrap(),
                every: Some(10),
                alert: Some(2.0),
            }
        );
        assert_eq!(
            parse_command("UNSUBSCRIBE 7").unwrap(),
            Command::Unsubscribe { id: Some(7) }
        );
        assert_eq!(
            parse_command("unsubscribe").unwrap(),
            Command::Unsubscribe { id: None }
        );
    }

    #[test]
    fn malformed_subscriptions_are_rejected() {
        for (line, needle) in [
            ("SUBSCRIBE", "usage:"),
            ("SUBSCRIBE * EVERY", "usage:"),
            ("SUBSCRIBE * EVERY 0", "must be positive"),
            ("SUBSCRIBE * EVERY ten", "not a non-negative integer"),
            ("SUBSCRIBE * EVERY 5 EVERY 6", "usage:"),
            ("SUBSCRIBE * ALERT", "usage:"),
            ("SUBSCRIBE * ALERT 1.5", "not k=<sigma>"),
            ("SUBSCRIBE * ALERT k=zero", "not a number"),
            ("SUBSCRIBE * ALERT k=-1", "must be positive"),
            ("SUBSCRIBE * ALERT k=nan", "must be positive and finite"),
            ("SUBSCRIBE cpu{host", "unterminated tag block"),
            ("UNSUBSCRIBE seven", "not an integer"),
            ("UNSUBSCRIBE 1 2", "usage:"),
        ] {
            let err = parse_command(line).unwrap_err();
            assert!(err.contains(needle), "`{line}` -> {err}");
        }
    }

    #[test]
    fn frame_and_alert_lines_are_single_line_and_round_trip() {
        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        let frame = Frame {
            smoothed: vec![0.1 + 0.2, 1.0 / 3.0, -4.5],
            outcome: asap_core::SearchOutcome {
                window: 7,
                roughness: 0.0,
                kurtosis: 0.0,
                candidates_checked: 1,
            },
            points_ingested: 1234,
        };
        let line = render_frame(&key, &frame);
        assert!(line.starts_with("FRAME cpu{host=a} seq=1234 window=7 n=3 "));
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.ends_with('\n'));
        let values: Vec<f64> = line
            .trim_end()
            .rsplit(' ')
            .next()
            .unwrap()
            .split(',')
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(values, frame.smoothed, "values round-trip through parse");

        let alert = Alert {
            run_len: 6,
            mean_z: -2.25,
            direction: Direction::Down,
            points_ingested: 1234,
        };
        assert_eq!(
            render_alert(&key, &alert),
            "ALERT cpu{host=a} seq=1234 dir=down run=6 mean_z=-2.25\n"
        );
    }

    #[test]
    fn range_rendering_is_count_prefixed_and_end_terminated() {
        let key = SeriesKey::metric("cpu").with_tag("host", "a");
        let rendered = render_range(&[(
            key,
            vec![DataPoint::new(1, 0.5), DataPoint::new(2, -1.25)],
        )]);
        assert_eq!(
            rendered,
            "OK 1\nSERIES cpu{host=a} 2\n1 0.5\n2 -1.25\nEND\n"
        );
        assert_eq!(render_range(&[]), "OK 0\nEND\n");
    }

    #[test]
    fn rendered_values_round_trip_through_f64_parse() {
        let values = [0.1 + 0.2, 1.0 / 3.0, -1.0e-300, f64::MAX];
        let points: Vec<DataPoint> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| DataPoint::new(i as i64, v))
            .collect();
        let rendered = render_range(&[(SeriesKey::metric("m"), points)]);
        for (line, &want) in rendered.lines().skip(2).take(values.len()).zip(&values) {
            let got: f64 = line.split(' ').nth(1).unwrap().parse().unwrap();
            assert_eq!(got, want, "value failed to round-trip: {line}");
        }
    }

    #[test]
    fn batch_headers_parse_strictly() {
        assert_eq!(parse_batch_header(b"BATCH 0"), Some(0));
        assert_eq!(parse_batch_header(b"BATCH 4096"), Some(4096));
        assert_eq!(parse_batch_header(b"batch 17"), Some(17), "case-insensitive verb");
        assert_eq!(parse_batch_header(b"BATCH 17\r"), Some(17), "CRLF tolerated");
        assert_eq!(
            parse_batch_header(b"BATCH 18446744073709551615"),
            Some(u64::MAX)
        );
        for bad in [
            &b"BATCH"[..],
            b"BATCH ",
            b"BATCH ten",
            b"BATCH -5",
            b"BATCH 1 2",
            b"BATCH 18446744073709551616", // u64 overflow
            b"BATCHX 5",
            b"cpu usage=1 1",
            b"",
        ] {
            assert_eq!(
                parse_batch_header(bad),
                None,
                "`{}` accepted",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn error_rendering_never_spans_lines() {
        let rendered = render_error("first\nsecond");
        assert_eq!(rendered, "ERR first; second\n");
        assert_eq!(rendered.matches('\n').count(), 1);
    }
}
