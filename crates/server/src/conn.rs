//! Connection state machines of the event-driven server core.
//!
//! One [`IngestConn`] / [`QueryConn`] owns one nonblocking socket and
//! makes *bounded* progress per tick — at most
//! [`crate::ServerConfig::read_budget`] bytes read, writes only as far
//! as the socket accepts — so one busy or misbehaving connection cannot
//! starve its worker's siblings. Readiness is level-triggered over
//! `ErrorKind::WouldBlock`: a tick that can't progress simply returns,
//! and the worker sleeps one poll interval before the next sweep.
//!
//! The [`Framer`] sits in front of the ingest byte stream and
//! implements the `BATCH <nbytes>` frame of the ingest protocol (see
//! [`crate::protocol`]): header lines are consumed by the framer,
//! payload and plain-line bytes pass through to the
//! [`StreamIngestor`] unchanged and in order.

use std::io::{Read, Write};
use std::net::{Shutdown as SocketShutdown, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use asap_tsdb::{obs, StreamIngestor};

use crate::protocol;
use crate::server::{execute, ActiveGuard, Shared, MAX_REQUEST_LINE};
use crate::subscribe::SubSession;

/// Stop reading new requests from a query connection while more than
/// this many response bytes are queued for it — the memory bound
/// against a client that pipelines requests without reading responses.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// Compact a write buffer once this many flushed bytes sit in front of
/// the unflushed remainder.
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Longest byte sequence that can still be a prefix of a valid
/// `BATCH <nbytes>` header line (`BATCH ` + 20 digits of `u64::MAX` +
/// `\r`); anything longer is known to be data.
const MAX_HEADER: usize = 32;

fn is_retry(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A bounded outbound buffer flushed by nonblocking writes: responses
/// are queued here and pushed out only as far as the socket accepts,
/// so no connection ever blocks its worker in `write_all`.
#[derive(Default)]
pub(crate) struct WriteBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    pos: usize,
}

impl WriteBuf {
    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Unflushed bytes currently queued.
    pub(crate) fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn push(&mut self, bytes: &[u8]) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// One nonblocking write pass; returns the bytes flushed this call.
    /// `Err` means the connection is dead (not merely unready).
    pub(crate) fn flush(&mut self, stream: &TcpStream) -> std::io::Result<usize> {
        let mut w = stream;
        let mut sent = 0usize;
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.pos += n;
                    sent += n;
                }
                Err(e) if is_retry(e.kind()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(sent)
    }
}

/// Byte-level `BATCH` framing state machine of the ingest stream (see
/// [`crate::protocol`] for the grammar). Pure and allocation-light:
/// payload bytes are never copied, only sliced through to the sink,
/// and the only buffering is a candidate header of at most
/// [`MAX_HEADER`] bytes.
pub(crate) struct Framer {
    state: FrameState,
    /// Bytes accumulated while the current line still looks like a
    /// `BATCH` header.
    header: Vec<u8>,
}

enum FrameState {
    /// At a line start: the next bytes may form a `BATCH` header.
    LineStart,
    /// Inside plain data (mid-line): pass through to the next newline.
    MidData,
    /// Inside a frame payload: pass `remaining` bytes through verbatim.
    Payload { remaining: u64 },
}

impl Framer {
    pub(crate) fn new() -> Self {
        Self {
            state: FrameState::LineStart,
            header: Vec::new(),
        }
    }

    /// Routes `bytes` through the framing state machine: valid `BATCH`
    /// headers are consumed; everything else — payload bytes, plain
    /// lines, and invalid headers degraded to data — reaches `sink`
    /// unchanged and in order. The concatenation of sink pieces is
    /// exactly the input minus consumed headers, so framing can never
    /// alter what the line-protocol layer sees.
    pub(crate) fn push(&mut self, mut bytes: &[u8], sink: &mut dyn FnMut(&[u8])) {
        while !bytes.is_empty() {
            match self.state {
                FrameState::Payload { remaining } => {
                    let take = usize::try_from(remaining)
                        .unwrap_or(usize::MAX)
                        .min(bytes.len());
                    sink(&bytes[..take]);
                    let left = remaining - take as u64;
                    if left == 0 {
                        // The end of a payload is always a framing
                        // position — back-to-back frames may split a
                        // line between their payloads. A plain
                        // continuation that doesn't look like a header
                        // falls straight through LineStart's fast path.
                        self.state = FrameState::LineStart;
                    } else {
                        self.state = FrameState::Payload { remaining: left };
                    }
                    bytes = &bytes[take..];
                }
                FrameState::MidData => {
                    // Pass whole data lines through in one piece; stop
                    // only where the next line could start a header.
                    let mut end = 0;
                    let mut next_state = FrameState::MidData;
                    loop {
                        match bytes[end..].iter().position(|&b| b == b'\n') {
                            None => {
                                end = bytes.len();
                                break;
                            }
                            Some(pos) => {
                                end += pos + 1;
                                next_state = FrameState::LineStart;
                                match bytes.get(end) {
                                    Some(c) if c.eq_ignore_ascii_case(&b'B') => break,
                                    None => break,
                                    Some(_) => {
                                        next_state = FrameState::MidData;
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                    sink(&bytes[..end]);
                    self.state = next_state;
                    bytes = &bytes[end..];
                }
                FrameState::LineStart => {
                    if self.header.is_empty() && !bytes[0].eq_ignore_ascii_case(&b'B') {
                        // Fast path: this line cannot be a header.
                        self.state = FrameState::MidData;
                        continue;
                    }
                    let b = bytes[0];
                    bytes = &bytes[1..];
                    self.header.push(b);
                    if b == b'\n' {
                        let line = &self.header[..self.header.len() - 1];
                        match protocol::parse_batch_header(line) {
                            Some(0) => {} // empty frame: stay at line start
                            Some(n) => self.state = FrameState::Payload { remaining: n },
                            // Looked like a header but isn't one:
                            // degrade to a data line (it will surface
                            // as a parse failure downstream).
                            None => sink(&self.header),
                        }
                        self.header.clear();
                    } else if !plausible_header(&self.header) {
                        // Diverged from `BATCH <digits>`: what was
                        // buffered is ordinary data.
                        sink(&self.header);
                        self.header.clear();
                        self.state = FrameState::MidData;
                    }
                }
            }
        }
    }
}

/// Whether `header` is still a prefix of a valid `BATCH <nbytes>` line.
fn plausible_header(header: &[u8]) -> bool {
    const TAG: &[u8] = b"BATCH ";
    if header.len() > MAX_HEADER {
        return false;
    }
    header.iter().enumerate().all(|(i, &b)| {
        if i < TAG.len() {
            b.eq_ignore_ascii_case(&TAG[i])
        } else {
            b.is_ascii_digit() || b == b'\r'
        }
    })
}

enum IngestPhase {
    /// Reading the socket and feeding the pipeline.
    Streaming,
    /// Stream over (EOF, error, or drain): flushing the report line.
    Flushing,
    /// Socket closed; the worker drops the connection.
    Done,
}

/// One ingest connection on the event core: a nonblocking socket driven
/// through the [`Framer`] into a dedicated [`StreamIngestor`] via
/// the non-blocking [`StreamIngestor::try_feed`] path. Backpressure
/// without a blocked thread: while the pipeline's bounded queues are
/// full the tick stops reading, the kernel buffer fills, and TCP flow
/// control stalls the sender — exactly the threaded core's behavior,
/// minus the thread.
pub(crate) struct IngestConn {
    stream: TcpStream,
    shared: Arc<Shared>,
    _slot: ActiveGuard,
    peer: String,
    id: u64,
    /// `Some` while streaming; taken by `begin_close`.
    ingestor: Option<StreamIngestor>,
    framer: Framer,
    out: WriteBuf,
    phase: IngestPhase,
    /// Last instant the report flush made byte progress.
    last_write_progress: Instant,
    /// The last tick stopped because the pipeline's bounded queue was
    /// full — waiting on parser progress, not on the peer.
    backpressured: bool,
}

impl IngestConn {
    /// Builds the connection (nonblocking socket + pipeline + registry
    /// entry). `None` means the socket was refused and already closed.
    pub(crate) fn new(stream: TcpStream, shared: Arc<Shared>, slot: ActiveGuard) -> Option<Self> {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(SocketShutdown::Both);
            return None;
        }
        let _ = stream.set_nodelay(true);
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string());
        // The fully wired pipeline config: WAL, post-reorder fanout to
        // standing subscriptions (the hook fires in store-apply order,
        // so pushed frames match a serial replay of the stored series),
        // and the shared stage histograms.
        let ingest_config = shared.pipeline_config();
        let ingestor = match shared
            .db()
            .stream_ingestor(shared.config().default_ts, ingest_config)
        {
            Ok(ingestor) => ingestor,
            Err(e) => {
                let mut w = &stream;
                let _ = w.write(protocol::render_error(&e.to_string()).as_bytes());
                let _ = stream.shutdown(SocketShutdown::Both);
                return None;
            }
        };
        let id = shared.register_connection();
        Some(Self {
            stream,
            shared,
            _slot: slot,
            peer,
            id,
            ingestor: Some(ingestor),
            framer: Framer::new(),
            out: WriteBuf::default(),
            phase: IngestPhase::Streaming,
            last_write_progress: Instant::now(),
            backpressured: false,
        })
    }

    /// Whether the last tick stopped on a full pipeline queue rather
    /// than an unready socket — the worker polls such connections on a
    /// much shorter tick, since a parser thread (not the peer) is what
    /// unblocks them.
    pub(crate) fn backpressured(&self) -> bool {
        self.backpressured
    }

    /// One readiness sweep; returns `(made_progress, done)`.
    pub(crate) fn tick(&mut self, scratch: &mut [u8]) -> (bool, bool) {
        let mut progressed = false;
        if matches!(self.phase, IngestPhase::Streaming) {
            progressed |= self.tick_streaming(scratch);
        }
        if matches!(self.phase, IngestPhase::Flushing) {
            progressed |= self.tick_flushing();
        }
        (progressed, matches!(self.phase, IngestPhase::Done))
    }

    fn tick_streaming(&mut self, scratch: &mut [u8]) -> bool {
        self.backpressured = false;
        {
            let ing = self
                .ingestor
                .as_mut()
                .expect("streaming phase owns the ingestor");
            // Drain the chunk backlog before reading more: while the
            // pipeline is full this connection must not consume input —
            // the event loop's stand-in for `feed()`'s blocking
            // backpressure.
            if !ing.try_pump() {
                self.backpressured = true;
                self.publish();
                return false;
            }
        }
        let mut budget = self.shared.config().read_budget;
        let mut progressed = false;
        while budget > 0 {
            let want = budget.min(scratch.len());
            match (&self.stream).read(&mut scratch[..want]) {
                Ok(0) => {
                    self.begin_close(true);
                    return true;
                }
                Ok(n) => {
                    progressed = true;
                    budget -= n;
                    let framer = &mut self.framer;
                    let ing = self
                        .ingestor
                        .as_mut()
                        .expect("streaming phase owns the ingestor");
                    framer.push(&scratch[..n], &mut |piece| {
                        ing.try_feed(piece);
                    });
                    if !ing.try_pump() {
                        // Pipeline full: stop reading this tick.
                        self.backpressured = true;
                        break;
                    }
                }
                Err(e) if is_retry(e.kind()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.begin_close(false);
                    return true;
                }
            }
        }
        self.publish();
        progressed
    }

    /// Ends the stream — `finish()` on a clean EOF (the trailing
    /// unterminated line is real data), `abort()` on error or drain
    /// (the tail is indistinguishable from a truncated record) — and
    /// queues the report line for flushing. `finish`/`abort` join the
    /// pipeline threads: server-side work bounded by the in-flight
    /// window, never by client behavior.
    fn begin_close(&mut self, clean: bool) {
        let ingestor = self
            .ingestor
            .take()
            .expect("close only happens once, from the streaming phase");
        let report = if clean {
            ingestor.finish()
        } else {
            ingestor.abort()
        };
        self.shared.finish_connection(self.id, &report);
        if self.shared.verbose() {
            obs::info(
                "server",
                "ingest_closed",
                &[("peer", &self.peer), ("report", &report)],
            );
        }
        self.out.push(format!("{report}\n").as_bytes());
        self.phase = IngestPhase::Flushing;
        self.last_write_progress = Instant::now();
    }

    fn tick_flushing(&mut self) -> bool {
        match self.out.flush(&self.stream) {
            Ok(n) => {
                if n > 0 {
                    self.last_write_progress = Instant::now();
                }
                if self.out.is_empty()
                    || self.last_write_progress.elapsed() > self.shared.config().write_deadline
                {
                    // Flushed — or the peer stopped reading its own
                    // report; either way, stop holding the slot.
                    let _ = self.stream.shutdown(SocketShutdown::Both);
                    self.phase = IngestPhase::Done;
                }
                n > 0
            }
            Err(_) => {
                self.phase = IngestPhase::Done;
                true
            }
        }
    }

    fn publish(&self) {
        if let Some(ing) = &self.ingestor {
            self.shared.publish_progress(self.id, ing.progress());
        }
    }

    /// Drain-time finalization: abort the stream (complete lines
    /// applied, reorder buffers flushed, the possibly-truncated tail
    /// discarded), then one best-effort flush of the report — bounded
    /// by server-side work only, never by the client.
    pub(crate) fn finalize(&mut self) {
        if matches!(self.phase, IngestPhase::Streaming) {
            self.begin_close(false);
        }
        if matches!(self.phase, IngestPhase::Flushing) {
            let _ = self.out.flush(&self.stream);
            let _ = self.stream.shutdown(SocketShutdown::Both);
            self.phase = IngestPhase::Done;
        }
    }
}

/// One query/ops connection on the event core: a line accumulator in
/// front of [`execute`], with responses queued through a [`WriteBuf`]
/// so a slow reader never blocks the worker. A reader stalled past
/// [`crate::ServerConfig::write_deadline`] with queued output is
/// disconnected (a queued `SHUTDOWN` still takes effect — the
/// client's inability to read the acknowledgment must not cancel it).
pub(crate) struct QueryConn {
    stream: TcpStream,
    shared: Arc<Shared>,
    _slot: ActiveGuard,
    acc: Vec<u8>,
    out: WriteBuf,
    /// This connection's standing subscriptions; dropping the
    /// connection (any path) unsubscribes them via `SubSession::drop`.
    session: SubSession,
    /// Client half-closed its write side; close once `out` drains.
    /// With live subscriptions the connection stays open in push-only
    /// mode — `watch`-style clients half-close after subscribing.
    eof: bool,
    /// Close once `out` drains (fatal protocol error or `SHUTDOWN`).
    close_after_flush: bool,
    /// Call `request_shutdown` when the connection finishes.
    shutdown_when_done: bool,
    last_write_progress: Instant,
    done: bool,
}

impl QueryConn {
    /// Builds the connection. `None` means the socket was refused and
    /// already closed.
    pub(crate) fn new(stream: TcpStream, shared: Arc<Shared>, slot: ActiveGuard) -> Option<Self> {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(SocketShutdown::Both);
            return None;
        }
        let _ = stream.set_nodelay(true);
        let session = SubSession::new(Arc::clone(shared.subscriptions()));
        Some(Self {
            stream,
            shared,
            _slot: slot,
            acc: Vec::new(),
            out: WriteBuf::default(),
            session,
            eof: false,
            close_after_flush: false,
            shutdown_when_done: false,
            last_write_progress: Instant::now(),
            done: false,
        })
    }

    /// One readiness sweep; returns `(made_progress, done)`.
    pub(crate) fn tick(&mut self, scratch: &mut [u8]) -> (bool, bool) {
        if self.done {
            return (false, true);
        }
        let mut progressed = false;

        // 1. Writes first: readiness applies to both socket halves, and
        // draining `out` is what re-opens the read path below.
        if !self.flush_out(&mut progressed) {
            return (true, true);
        }
        if !self.out.is_empty()
            && self.last_write_progress.elapsed() > self.shared.config().write_deadline
        {
            // Stalled reader with queued responses: disconnect rather
            // than buffer unboundedly or hold the slot forever.
            self.finish_now();
            return (true, true);
        }

        // 1b. Move pushed FRAME/ALERT lines into the write buffer,
        // bounded by the same high-water mark as request responses: a
        // subscriber that stops reading fills `out`, further frames
        // lag-drop in its bounded outbox, and the write-deadline check
        // above eventually disconnects it — ingest is never delayed.
        if self.session.has_subs() && self.out.len() < OUT_HIGH_WATER {
            let was_empty = self.out.is_empty();
            let mut moved = false;
            while self.out.len() < OUT_HIGH_WATER {
                let Some(line) = self.session.outbox().pop() else {
                    break;
                };
                self.out.push(line.as_bytes());
                moved = true;
            }
            if moved {
                progressed = true;
                if was_empty {
                    // Arm the stall deadline fresh: the clock starts
                    // when output becomes pending, not at connect time.
                    self.last_write_progress = Instant::now();
                }
            }
        }

        // 2. Read more requests — only while the client keeps draining
        // responses (high-water mark) and wants more (`eof`).
        if !self.eof && !self.close_after_flush && self.out.len() < OUT_HIGH_WATER {
            let mut budget = self.shared.config().read_budget;
            while budget > 0 {
                let want = budget.min(scratch.len());
                match (&self.stream).read(&mut scratch[..want]) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        budget -= n;
                        self.acc.extend_from_slice(&scratch[..n]);
                        if self.acc.len() > MAX_REQUEST_LINE {
                            break;
                        }
                    }
                    Err(e) if is_retry(e.kind()) => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.finish_now();
                        return (true, true);
                    }
                }
            }
        }

        // 3. Execute complete lines, bounded by the same high-water
        // mark so a request burst cannot queue unbounded responses.
        while !self.close_after_flush && self.out.len() < OUT_HIGH_WATER {
            let Some(pos) = self.acc.iter().position(|&b| b == b'\n') else {
                break;
            };
            let raw: Vec<u8> = self.acc.drain(..=pos).collect();
            progressed = true;
            let text = String::from_utf8_lossy(&raw);
            let line = text.trim();
            if line.is_empty() {
                continue;
            }
            let (response, shutdown_after) = execute(line, &self.shared, &mut self.session);
            self.out.push(response.as_bytes());
            self.last_write_progress = Instant::now();
            if shutdown_after {
                self.shutdown_when_done = true;
                self.close_after_flush = true;
            }
        }
        // A newline-free request past the line cap is fatal: answer
        // with one ERR and disconnect (remote input must not grow
        // server memory).
        if !self.close_after_flush
            && self.acc.len() > MAX_REQUEST_LINE
            && !self.acc.contains(&b'\n')
        {
            self.out.push(
                protocol::render_error(&format!("request line exceeds {MAX_REQUEST_LINE} bytes"))
                    .as_bytes(),
            );
            self.last_write_progress = Instant::now();
            self.close_after_flush = true;
            progressed = true;
        }

        // 4. Flush what this tick produced; close when nothing is left
        // to say.
        if !self.flush_out(&mut progressed) {
            return (true, true);
        }
        if self.out.is_empty() && (self.close_after_flush || (self.eof && !self.session.has_subs()))
        {
            self.finish_now();
            return (progressed, true);
        }
        (progressed, false)
    }

    /// Flushes `out`; returns `false` when the connection died (already
    /// finished).
    fn flush_out(&mut self, progressed: &mut bool) -> bool {
        match self.out.flush(&self.stream) {
            Ok(n) => {
                if n > 0 {
                    *progressed = true;
                    self.last_write_progress = Instant::now();
                }
                true
            }
            Err(_) => {
                self.finish_now();
                false
            }
        }
    }

    fn finish_now(&mut self) {
        if self.shutdown_when_done {
            self.shared.request_shutdown();
        }
        let _ = self.stream.shutdown(SocketShutdown::Both);
        self.done = true;
    }

    /// Drain-time finalization: one best-effort flush, then close —
    /// bounded by the poll interval, never by client behavior.
    pub(crate) fn finalize(&mut self) {
        if self.done {
            return;
        }
        let _ = self.out.flush(&self.stream);
        self.finish_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs bytes through a framer in pieces of `step`, concatenating
    /// what reaches the sink.
    fn defragment(input: &[u8], step: usize) -> Vec<u8> {
        let mut framer = Framer::new();
        let mut out = Vec::new();
        for piece in input.chunks(step.max(1)) {
            framer.push(piece, &mut |bytes| out.extend_from_slice(bytes));
        }
        out
    }

    #[test]
    fn framer_passes_plain_lines_through_unchanged() {
        let doc = b"cpu v=1 1\nmem v=2 2\n\n# comment\ncpu v=3 3\n";
        for step in [1, 2, 3, 7, doc.len()] {
            assert_eq!(defragment(doc, step), doc, "step {step}");
        }
    }

    #[test]
    fn framer_strips_headers_and_passes_payloads_verbatim() {
        let payload = b"cpu v=1 1\nmem v=2 2\n";
        let mut doc = format!("BATCH {}\n", payload.len()).into_bytes();
        doc.extend_from_slice(payload);
        doc.extend_from_slice(b"tail v=3 3\n");
        let mut want = payload.to_vec();
        want.extend_from_slice(b"tail v=3 3\n");
        for step in [1, 4, 9, doc.len()] {
            assert_eq!(defragment(&doc, step), want, "step {step}");
        }
    }

    #[test]
    fn framer_continues_lines_across_frame_boundaries() {
        // One logical line split across a frame payload, plain bytes,
        // and a second frame: the sink must see the bytes contiguously.
        let mut doc = Vec::new();
        doc.extend_from_slice(b"BATCH 12\n");
        doc.extend_from_slice(b"cpu v=1 1\nme"); // 12 bytes, ends mid-line
        doc.extend_from_slice(b"m v="); // plain continuation, still mid-line
        doc.extend_from_slice(b"BATCH 4\n"); // *data*, not a header (mid-line)
        doc.extend_from_slice(b"2 2\n");
        let want = b"cpu v=1 1\nmem v=BATCH 4\n2 2\n";
        for step in [1, 3, 5, doc.len()] {
            assert_eq!(
                String::from_utf8_lossy(&defragment(&doc, step)),
                String::from_utf8_lossy(want),
                "step {step}"
            );
        }
    }

    #[test]
    fn framer_degrades_invalid_headers_to_data() {
        for bad in ["BATCH ten\n", "BATCH \n", "BATCH 1 2\n", "BANANA v=1 1\n"] {
            let doc = format!("{bad}cpu v=1 1\n").into_bytes();
            for step in [1, 2, doc.len()] {
                assert_eq!(defragment(&doc, step), doc, "`{}` step {step}", bad.trim());
            }
        }
    }

    #[test]
    fn framer_handles_empty_and_back_to_back_frames() {
        let mut doc = Vec::new();
        doc.extend_from_slice(b"BATCH 0\n");
        doc.extend_from_slice(b"BATCH 6\n");
        doc.extend_from_slice(b"a v=1\n");
        doc.extend_from_slice(b"BATCH 6\n");
        doc.extend_from_slice(b"b v=2\n");
        let want = b"a v=1\nb v=2\n";
        for step in [1, 5, doc.len()] {
            assert_eq!(defragment(&doc, step), want, "step {step}");
        }
    }

    #[test]
    fn framer_recognizes_headers_immediately_after_mid_line_payloads() {
        // One line split across two back-to-back frames: the second
        // header follows a payload that ended mid-line and must still
        // be consumed as framing, not data.
        let mut doc = Vec::new();
        doc.extend_from_slice(b"BATCH 4\n");
        doc.extend_from_slice(b"m v=");
        doc.extend_from_slice(b"BATCH 4\n");
        doc.extend_from_slice(b"1 1\n");
        for step in [1, 3, doc.len()] {
            assert_eq!(defragment(&doc, step), b"m v=1 1\n", "step {step}");
        }
    }

    #[test]
    fn framer_tolerates_crlf_headers() {
        let doc = b"BATCH 6\r\na v=1\n";
        assert_eq!(defragment(doc, 1), b"a v=1\n");
    }

    #[test]
    fn write_buf_tracks_pending_bytes_and_compacts() {
        let mut buf = WriteBuf::default();
        assert!(buf.is_empty());
        buf.push(b"hello ");
        buf.push(b"world");
        assert_eq!(buf.len(), 11);
        assert!(!buf.is_empty());
    }
}
