//! The legacy thread-per-connection server core
//! ([`crate::CoreMode::Threaded`]): one accept loop per listener, one
//! handler thread per accepted connection, blocking sockets with short
//! read timeouts (the drain-flag poll) and a write deadline (so a peer
//! that stops reading cannot wedge a handler in `write_all` and hang
//! [`crate::Server::drain`], which joins every handler).
//!
//! Kept as the conservative fallback behind `--core threaded`; the
//! default is the event-driven core in [`crate::event`]. Both cores
//! speak the same protocol, `BATCH` framing included, and must be
//! observationally identical — the integration suite runs its oracle
//! wall against each.

use std::io::{Read, Write};
use std::net::{Shutdown as SocketShutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use asap_tsdb::obs;

use crate::conn::Framer;
use crate::protocol;
use crate::server::{execute, ActiveGuard, Port, Shared, MAX_REQUEST_LINE};
use crate::subscribe::SubSession;

/// Spawns the two accept loops of the threaded core.
pub(crate) fn start(
    ingest_listener: TcpListener,
    query_listener: TcpListener,
    shared: &Arc<Shared>,
) -> Vec<JoinHandle<()>> {
    let mut threads = Vec::with_capacity(2);
    let s = Arc::clone(shared);
    threads.push(std::thread::spawn(move || {
        accept_loop(ingest_listener, &s, Port::Ingest, handle_ingest);
    }));
    let s = Arc::clone(shared);
    threads.push(std::thread::spawn(move || {
        accept_loop(query_listener, &s, Port::Query, handle_query);
    }));
    threads
}

/// Joins finished handler threads, keeping the live ones.
fn reap(handlers: Vec<JoinHandle<()>>) -> Vec<JoinHandle<()>> {
    let (done, live): (Vec<_>, Vec<_>) = handlers.into_iter().partition(JoinHandle::is_finished);
    for handle in done {
        let _ = handle.join();
    }
    live
}

/// One listener's accept loop: reap finished handlers, enforce the
/// port's connection cap (refused connections get one `ERR` line, and
/// the refusal is counted for *both* ports), and spawn `handle` per
/// accepted stream. The listener is nonblocking, so an idle loop (and
/// any persistent accept error, e.g. fd exhaustion) sleeps one poll
/// interval between drain-flag checks instead of parking in `accept()`
/// or spinning — and reaps on that idle path too, so a long-idle server
/// does not sit on zombie handles from an earlier connection burst.
fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    port: Port,
    handle: fn(TcpStream, &Arc<Shared>, ActiveGuard),
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.is_draining() {
                    break;
                }
                handlers = reap(handlers);
                std::thread::sleep(shared.config().poll_interval);
                continue;
            }
        };
        if shared.is_draining() {
            break; // drop connections that race the drain
        }
        // Whether accepted sockets inherit the listener's nonblocking
        // flag is platform-defined; the handlers need blocking reads
        // with timeouts.
        if stream.set_nonblocking(false).is_err() {
            let _ = stream.shutdown(SocketShutdown::Both);
            continue;
        }
        handlers = reap(handlers);
        let Some(slot) = shared.try_acquire_slot(port) else {
            shared.reject_connection(port);
            let cap = port.cap(shared.config());
            let _ = stream.set_write_timeout(Some(shared.config().write_deadline));
            let mut stream = stream;
            let _ = stream.write_all(
                protocol::render_error(&format!("connection limit reached ({cap} active)"))
                    .as_bytes(),
            );
            let _ = stream.shutdown(SocketShutdown::Both);
            continue;
        };
        let s = Arc::clone(shared);
        handlers.push(std::thread::spawn(move || handle(stream, &s, slot)));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One ingest connection: drain the socket through the [`Framer`] into
/// a dedicated [`asap_tsdb::StreamIngestor`] with end-to-end
/// backpressure (a full pipeline blocks `feed`, which stops reading,
/// which fills the kernel buffers, which stalls the sender), then write
/// the final [`asap_tsdb::IngestReport`] line back on close.
fn handle_ingest(stream: TcpStream, shared: &Arc<Shared>, slot: ActiveGuard) {
    let _active = slot;
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "<unknown>".to_owned(), |a| a.to_string());
    let _ = stream.set_read_timeout(Some(shared.config().poll_interval));
    // The report write at close must not block forever on a peer that
    // sent its stream but never reads the response.
    let _ = stream.set_write_timeout(Some(shared.config().write_deadline));
    let _ = stream.set_nodelay(true);
    // The fully wired pipeline config: WAL, subscription fanout (see
    // `Shared::subscription_hook`), and the shared stage histograms.
    let ingest_config = shared.pipeline_config();
    let mut ingestor = match shared
        .db()
        .stream_ingestor(shared.config().default_ts, ingest_config)
    {
        Ok(ingestor) => ingestor,
        Err(e) => {
            let _ = (&stream).write_all(protocol::render_error(&e.to_string()).as_bytes());
            return;
        }
    };
    let mut framer = Framer::new();
    let id = shared.register_connection();
    let mut buf = vec![0u8; 64 * 1024];
    let mut truncated = false;
    loop {
        if shared.is_draining() {
            // The drain cuts the byte stream at an arbitrary read
            // boundary — an unterminated trailing line is
            // indistinguishable from a truncated one (`…17` out of
            // `…1700000000` parses as a valid, wrong point).
            truncated = true;
            break;
        }
        match (&stream).read(&mut buf) {
            Ok(0) => break, // client finished its stream
            Ok(n) => {
                framer.push(&buf[..n], &mut |piece| ingestor.feed(piece));
                shared.publish_progress(id, ingestor.progress());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                shared.publish_progress(id, ingestor.progress());
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                truncated = true;
                break;
            }
        }
    }
    // A clean close flushes the trailing line and every reorder buffer;
    // a broken socket or a mid-stream drain aborts instead, applying
    // all complete lines and still flushing the reorder buffers, but
    // discarding the possibly-truncated unterminated tail (PR 4
    // semantics).
    let report = if truncated {
        ingestor.abort()
    } else {
        ingestor.finish()
    };
    shared.finish_connection(id, &report);
    if shared.verbose() {
        obs::info(
            "server",
            "ingest_closed",
            &[("peer", &peer), ("report", &report)],
        );
    }
    let _ = (&stream).write_all(format!("{report}\n").as_bytes());
    let _ = stream.shutdown(SocketShutdown::Both);
}

/// One query/ops connection: accumulate bytes, execute each complete
/// line as a command, write one response per request. Writes carry the
/// configured deadline, so a client that requests a large response and
/// then stops reading is disconnected instead of pinning this thread —
/// and, transitively, [`crate::Server::drain`] — forever. The same
/// deadline bounds pushed `FRAME`/`ALERT` lines: a subscriber that
/// stops reading times out in `write_all` and is disconnected, while
/// its bounded outbox lag-drops rather than delaying ingest. A client
/// that half-closes with live subscriptions stays in push-only mode
/// instead of ending the handler.
fn handle_query(stream: TcpStream, shared: &Arc<Shared>, slot: ActiveGuard) {
    let _active = slot;
    let _ = stream.set_read_timeout(Some(shared.config().poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config().write_deadline));
    let _ = stream.set_nodelay(true);
    let mut session = SubSession::new(Arc::clone(shared.subscriptions()));
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8 * 1024];
    let mut eof = false;
    loop {
        while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = acc.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&raw);
            let line = text.trim();
            if line.is_empty() {
                continue;
            }
            let (response, shutdown_after) = execute(line, shared, &mut session);
            if (&stream).write_all(response.as_bytes()).is_err() {
                if shutdown_after {
                    // The peer's failure to read the acknowledgment
                    // must not cancel a SHUTDOWN it already issued.
                    shared.request_shutdown();
                }
                return;
            }
            if shutdown_after {
                shared.request_shutdown();
                let _ = stream.shutdown(SocketShutdown::Both);
                return;
            }
        }
        if acc.len() > MAX_REQUEST_LINE {
            let _ = (&stream).write_all(
                protocol::render_error(&format!("request line exceeds {MAX_REQUEST_LINE} bytes"))
                    .as_bytes(),
            );
            let _ = stream.shutdown(SocketShutdown::Both);
            return;
        }
        // Push pending FRAME/ALERT lines. `write_all` under the send
        // timeout returns an error on a stalled reader; disconnecting
        // here is this core's stalled-subscriber wall.
        while let Some(line) = session.outbox().pop() {
            if (&stream).write_all(line.as_bytes()).is_err() {
                return;
            }
        }
        if shared.is_draining() {
            return;
        }
        if eof {
            if !session.has_subs() {
                return;
            }
            // Push-only mode: nothing left to read; wake on the poll
            // interval to forward freshly pushed lines.
            std::thread::sleep(shared.config().poll_interval);
            continue;
        }
        match (&stream).read(&mut buf) {
            Ok(0) => {
                if session.has_subs() {
                    eof = true;
                } else {
                    return;
                }
            }
            Ok(n) => acc.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}
