//! The background compaction scheduler: a thread driving
//! [`asap_tsdb::Compactor::run_sharded`] on jittered wall-clock ticks.
//!
//! Each tick the scheduler (1) draws the next delay from the configured
//! [`asap_tsdb::Schedule`] with its own seeded RNG, (2) sleeps
//! interruptibly — a server drain wakes it immediately, (3) takes the
//! snapshot gate so it never compacts mid-snapshot (and a snapshot never
//! starts mid-compaction), (4) resolves the logical `now` per the
//! configured [`CompactionClock`], and (5) runs one shard-parallel
//! compaction pass, folding the outcome into the server's
//! [`crate::CompactionStats`] (surfaced through `STATS`).
//!
//! The thread's lifecycle is tied to the server's: spawned by
//! [`crate::Server::start`], joined during the drain after every ingest
//! connection has flushed.

use rand::rngs::StdRng;
use rand::SeedableRng;

use asap_tsdb::{obs, Compactor};

use crate::server::{CompactionClock, CompactionConfig, Shared};

/// The scheduler thread body.
pub(crate) fn run(shared: &Shared, config: &CompactionConfig) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut compactor =
        Compactor::new(config.policy.clone()).expect("policy validated by Server::start");
    loop {
        let delay = config.schedule.next_delay(&mut rng);
        if shared.wait_drain_timeout(delay) {
            break;
        }
        // Pause while a snapshot save holds the gate; re-check the drain
        // flag afterwards so shutdown is never delayed by a full pass.
        let _gate = shared.snapshot_gate();
        if shared.is_draining() {
            break;
        }
        let now = match config.clock {
            CompactionClock::WallClock => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .ok()
                .and_then(|d| i64::try_from(d.as_secs()).ok()),
            CompactionClock::DataWatermark => shared
                .db()
                .shard_occupancy()
                .iter()
                .filter_map(|o| o.watermark)
                .max(),
        };
        let Some(now) = now else {
            shared.record_compaction(|stats| stats.skipped += 1);
            continue;
        };
        let started = std::time::Instant::now();
        let outcome = compactor.run_sharded(shared.db(), now);
        shared.metrics().compaction_run.observe_duration(started.elapsed());
        match outcome {
            // `record_success` clears `last_error`: a populated value
            // always describes the *latest* pass, so one transient
            // failure doesn't read as a persistent fault forever.
            Ok(report) => shared.record_compaction(|stats| stats.record_success(&report)),
            Err(e) => {
                obs::warn("compaction", "pass_failed", &[("error", &e)]);
                shared.record_compaction(|stats| stats.record_failure(e.to_string()));
            }
        }
    }
}
