//! `asap-server` — serve a [`asap_tsdb::ShardedDb`] over TCP.
//!
//! ```text
//! asap-server [--ingest ADDR] [--query ADDR] [--shards N] [--block-capacity N]
//!             [--lateness L] [--max-connections N]
//!             [--core event|threaded] [--event-workers N] [--write-deadline-ms N]
//!             [--sub-window N] [--sub-resolution N] [--sub-every N]
//!             [--max-subscriptions N]
//!             [--compact-interval SECS [--compact-jitter SECS]
//!              [--rollup BUCKET] [--raw-ttl T]]
//!             [--snapshot PATH] [--snapshot-dir DIR]
//!             [--wal-dir DIR [--fsync always|every=N|interval-ms=N]]
//!             [--checkpoint-interval SECS [--checkpoint-chain-depth N]]
//!             [--log-level error|warn|info|debug] [--slow-query-ms N]
//!             [--self-scrape-interval SECS]
//! ```
//!
//! Feed it InfluxDB-style line protocol on the ingest port (optionally
//! wrapped in length-prefixed `BATCH <nbytes>` frames); speak the
//! text protocol (`SMOOTH`, `RANGE`, `SUBSCRIBE`, `UNSUBSCRIBE`,
//! `STATS`, `HEALTH`, `SNAPSHOT`, `SHUTDOWN`) on the query port.
//! `--max-connections` caps each listener (ingest and query) at N
//! concurrent connections. `--core` picks the I/O core: `event`
//! (default) multiplexes all connections onto `--event-workers`
//! threads sweeping nonblocking sockets; `threaded` is the legacy
//! thread-per-connection fallback. `--write-deadline-ms` bounds how
//! long a peer with pending response bytes may refuse to read before
//! it is disconnected — including subscribers that stop reading
//! pushed frames. `--sub-window`/`--sub-resolution` set the streaming
//! smoothing template behind `SUBSCRIBE` (window points and target
//! output resolution), `--sub-every` its default refresh cadence, and
//! `--max-subscriptions` caps standing subscriptions server-wide.
//! `SNAPSHOT <name>` writes inside `--snapshot-dir` only; without the
//! flag the command is disabled — query clients are unauthenticated and
//! must not choose server filesystem paths. The process runs until a
//! client sends `SHUTDOWN`, then drains gracefully and prints the
//! final report.
//!
//! Durability: `--wal-dir` appends every applied point to a per-shard
//! write-ahead log (sync cadence set by `--fsync`, default `every=256`)
//! and replays any log left by a previous run before the listeners
//! open. With `--snapshot PATH` the path doubles as persistent state:
//! an existing snapshot is loaded at boot (the WAL tail replays on
//! top), and the drain-time save becomes a checkpoint that truncates
//! the covered log generations. See DESIGN.md § Durability.
//!
//! Online checkpoints: `--checkpoint-interval SECS` upgrades the
//! `--snapshot` path from a single file to an incremental *chain
//! directory* (a full base snapshot plus per-checkpoint deltas holding
//! only the series that changed, committed by a CRC-guarded manifest).
//! A background thread then checkpoints on jittered ticks while the
//! server runs, truncating the covered WAL generations each pass — the
//! log stays bounded without waiting for shutdown, and checkpoint cost
//! tracks write activity rather than store size.
//! `--checkpoint-chain-depth N` (default 8) caps the delta links before
//! a pass re-bases. Requires `--snapshot`; boot loads a chain directory
//! exactly like a snapshot file.
//!
//! Observability: `METRICS` on the query port returns Prometheus text
//! exposition of the same registry `STATS` reads. `--log-level` sets
//! the structured-log threshold (`key=value` lines on stderr, default
//! `info`). `--slow-query-ms N` logs any query/ops request whose total
//! handling time reaches N milliseconds. `--self-scrape-interval SECS`
//! ingests the server's own metrics as `__self__`-tagged series every
//! tick, so `RANGE`/`SMOOTH`/`SUBSCRIBE` (e.g. `asap-cli watch`) work
//! on the server's telemetry; see DESIGN.md § Observability.

use std::time::Duration;

use asap_server::{
    CheckpointConfig, CompactionClock, CompactionConfig, CoreMode, Server, ServerConfig,
};
use asap_tsdb::{
    obs, Aggregator, FsyncPolicy, IngestConfig, LogLevel, RetentionPolicy, RollupLevel, Schedule,
    ShardedConfig, ShardedDb, WalConfig,
};

const USAGE: &str = "usage: asap-server [--ingest ADDR] [--query ADDR] [--shards N] \
                     [--block-capacity N] [--lateness L] [--max-connections N] \
                     [--core event|threaded] [--event-workers N] [--write-deadline-ms N] \
                     [--sub-window N] [--sub-resolution N] [--sub-every N] \
                     [--max-subscriptions N] \
                     [--compact-interval SECS [--compact-jitter SECS] [--rollup BUCKET] \
                     [--raw-ttl T]] [--snapshot PATH] [--snapshot-dir DIR] \
                     [--wal-dir DIR [--fsync always|every=N|interval-ms=N]] \
                     [--checkpoint-interval SECS [--checkpoint-chain-depth N]] \
                     [--log-level error|warn|info|debug] [--slow-query-ms N] \
                     [--self-scrape-interval SECS]";

fn fail(message: &str) -> ! {
    eprintln!("asap-server: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    let Some(value) = value else {
        fail(&format!("{flag} needs a value"));
    };
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: cannot parse `{value}`")))
}

fn main() {
    let mut ingest_addr = "127.0.0.1:9009".to_owned();
    let mut query_addr = "127.0.0.1:9010".to_owned();
    let mut shards = 8usize;
    let mut block_capacity = 4096usize;
    let mut lateness: Option<i64> = None;
    let mut max_connections = 64usize;
    let mut core = CoreMode::Event;
    let mut event_workers: Option<usize> = None;
    let mut write_deadline_ms: Option<u64> = None;
    let mut sub_window: Option<usize> = None;
    let mut sub_resolution: Option<usize> = None;
    let mut sub_every: Option<usize> = None;
    let mut max_subscriptions: Option<usize> = None;
    let mut compact_interval: Option<u64> = None;
    let mut compact_jitter = 0u64;
    let mut rollup: Option<i64> = None;
    let mut raw_ttl: Option<i64> = None;
    let mut snapshot = None;
    let mut snapshot_dir = None;
    let mut wal_dir: Option<std::path::PathBuf> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut checkpoint_interval: Option<u64> = None;
    let mut checkpoint_chain_depth = 8usize;
    let mut log_level: Option<LogLevel> = None;
    let mut slow_query_ms: Option<u64> = None;
    let mut self_scrape_secs: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--ingest" => ingest_addr = parse(args.next(), "--ingest"),
            "--query" => query_addr = parse(args.next(), "--query"),
            "--shards" => shards = parse(args.next(), "--shards"),
            "--block-capacity" => block_capacity = parse(args.next(), "--block-capacity"),
            "--lateness" => lateness = Some(parse(args.next(), "--lateness")),
            "--max-connections" => max_connections = parse(args.next(), "--max-connections"),
            "--core" => {
                core = match parse::<String>(args.next(), "--core").as_str() {
                    "event" => CoreMode::Event,
                    "threaded" => CoreMode::Threaded,
                    other => fail(&format!("--core: `{other}` is not event|threaded")),
                }
            }
            "--event-workers" => event_workers = Some(parse(args.next(), "--event-workers")),
            "--write-deadline-ms" => {
                write_deadline_ms = Some(parse(args.next(), "--write-deadline-ms"))
            }
            "--sub-window" => sub_window = Some(parse(args.next(), "--sub-window")),
            "--sub-resolution" => sub_resolution = Some(parse(args.next(), "--sub-resolution")),
            "--sub-every" => sub_every = Some(parse(args.next(), "--sub-every")),
            "--max-subscriptions" => {
                max_subscriptions = Some(parse(args.next(), "--max-subscriptions"))
            }
            "--compact-interval" => {
                compact_interval = Some(parse(args.next(), "--compact-interval"))
            }
            "--compact-jitter" => compact_jitter = parse(args.next(), "--compact-jitter"),
            "--rollup" => rollup = Some(parse(args.next(), "--rollup")),
            "--raw-ttl" => raw_ttl = Some(parse(args.next(), "--raw-ttl")),
            "--snapshot" => snapshot = Some(std::path::PathBuf::from(
                parse::<String>(args.next(), "--snapshot"),
            )),
            "--snapshot-dir" => snapshot_dir = Some(std::path::PathBuf::from(
                parse::<String>(args.next(), "--snapshot-dir"),
            )),
            "--wal-dir" => wal_dir = Some(std::path::PathBuf::from(
                parse::<String>(args.next(), "--wal-dir"),
            )),
            "--fsync" => fsync = Some(parse(args.next(), "--fsync")),
            "--checkpoint-interval" => {
                checkpoint_interval = Some(parse(args.next(), "--checkpoint-interval"))
            }
            "--checkpoint-chain-depth" => {
                checkpoint_chain_depth = parse(args.next(), "--checkpoint-chain-depth")
            }
            "--log-level" => log_level = Some(parse(args.next(), "--log-level")),
            "--slow-query-ms" => slow_query_ms = Some(parse(args.next(), "--slow-query-ms")),
            "--self-scrape-interval" => {
                self_scrape_secs = Some(parse(args.next(), "--self-scrape-interval"))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let compaction = compact_interval.map(|secs| CompactionConfig {
        policy: RetentionPolicy {
            raw_ttl,
            rollups: rollup
                .map(|bucket| RollupLevel {
                    bucket,
                    aggregator: Aggregator::Mean,
                    ttl: None,
                })
                .into_iter()
                .collect(),
        },
        schedule: Schedule::every(Duration::from_secs(secs))
            .with_jitter(Duration::from_secs(compact_jitter)),
        seed: 0x5eed,
        clock: CompactionClock::WallClock,
    });

    if fsync.is_some() && wal_dir.is_none() {
        fail("--fsync needs --wal-dir");
    }
    let wal = wal_dir.map(|dir| WalConfig {
        dir,
        fsync: fsync.unwrap_or_default(),
    });

    // `--checkpoint-interval` turns the `--snapshot` path into an
    // incremental chain directory maintained online: the background
    // scheduler (and the drain) checkpoint into the chain, so the
    // single-file drain-time save is replaced, not duplicated.
    if checkpoint_interval.is_some() && snapshot.is_none() {
        fail("--checkpoint-interval needs --snapshot (the chain directory)");
    }
    let checkpoint = checkpoint_interval.map(|secs| CheckpointConfig {
        dir: snapshot.clone().expect("checked above"),
        schedule: Schedule::every(Duration::from_secs(secs))
            .with_jitter(Duration::from_secs(secs / 10)),
        seed: 0xc4ec,
        chain_depth: checkpoint_chain_depth,
    });
    let final_snapshot = if checkpoint.is_some() {
        None
    } else {
        snapshot.clone()
    };

    let defaults = ServerConfig::default();
    let config = ServerConfig {
        ingest_addr,
        query_addr,
        max_ingest_connections: max_connections,
        max_query_connections: max_connections,
        ingest: IngestConfig {
            lateness,
            ..IngestConfig::default()
        },
        compaction,
        final_snapshot,
        snapshot_dir,
        wal,
        checkpoint,
        core,
        event_workers: event_workers.unwrap_or(defaults.event_workers),
        write_deadline: write_deadline_ms
            .map_or(defaults.write_deadline, Duration::from_millis),
        subscribe_window: sub_window.unwrap_or(defaults.subscribe_window),
        subscribe_resolution: sub_resolution.unwrap_or(defaults.subscribe_resolution),
        subscribe_every: sub_every.unwrap_or(defaults.subscribe_every),
        max_subscriptions: max_subscriptions.unwrap_or(defaults.max_subscriptions),
        verbose: true,
        slow_query: slow_query_ms.map(Duration::from_millis),
        self_scrape: self_scrape_secs.map(Duration::from_secs),
        ..defaults
    };
    // Raise/lower the log threshold before anything can emit a line.
    obs::set_log_level(log_level.unwrap_or(LogLevel::Info));
    // `--snapshot` doubles as persistent state: an existing snapshot is
    // the checkpoint base, and `Server::start` replays the WAL tail on
    // top of it before the listeners open.
    let store_config = ShardedConfig::new(shards, block_capacity);
    let db = match &snapshot {
        Some(path) if path.exists() => match ShardedDb::load(path, store_config) {
            Ok(db) => {
                obs::info("server", "snapshot_loaded", &[("path", &path.display())]);
                db
            }
            Err(e) => fail(&format!("cannot load snapshot {}: {e}", path.display())),
        },
        _ => ShardedDb::with_config(store_config),
    };
    let server = match Server::start(db, config) {
        Ok(server) => server,
        Err(e) => fail(&e.to_string()),
    };
    let replay = server.wal_replay_report();
    if replay.files > 0 {
        obs::info(
            "server",
            "wal_replayed",
            &[
                ("applied", &replay.applied),
                ("files", &replay.files),
                ("skipped", &replay.skipped),
                ("damaged", &replay.damaged),
            ],
        );
    }
    obs::info(
        "server",
        "listening",
        &[
            ("ingest", &server.ingest_addr()),
            ("query", &server.query_addr()),
            (
                "verbs",
                &"SMOOTH|RANGE|SUBSCRIBE|UNSUBSCRIBE|STATS|METRICS|HEALTH|SNAPSHOT|SHUTDOWN",
            ),
        ],
    );
    let report = server.run();
    obs::info(
        "server",
        "drained",
        &[
            ("lines", &report.ingest.lines),
            ("points", &report.ingest.points),
            ("connections", &report.ingest.connections),
            ("rejected", &report.ingest.rejected_connections),
            ("compaction_runs", &report.compaction.runs),
            ("rolled_up", &report.compaction.rolled_up),
        ],
    );
    if report.checkpoint.runs > 0 || report.checkpoint.errors > 0 {
        obs::info(
            "server",
            "checkpoints",
            &[
                ("runs", &report.checkpoint.runs),
                ("rebases", &report.checkpoint.rebases),
                ("chain_links", &report.checkpoint.chain_links),
                ("bytes_written", &report.checkpoint.bytes_written),
                ("wal_files_discarded", &report.checkpoint.wal_files_discarded),
            ],
        );
    }
    let mut failed = false;
    if let Some(e) = report.final_snapshot_error {
        obs::error("server", "final_snapshot_failed", &[("error", &e)]);
        failed = true;
    }
    // The drain ends with one final checkpoint on chain-configured
    // servers; a populated `last_error` means that final pass failed.
    if let Some(e) = report.checkpoint.last_error {
        obs::error("server", "final_checkpoint_failed", &[("error", &e)]);
        failed = true;
    }
    if let Some(e) = report.wal_seal_error {
        obs::error("server", "wal_seal_failed", &[("error", &e)]);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
