//! The event-driven server core ([`crate::CoreMode::Event`], the
//! default): one dispatcher thread accepting on both listeners plus a
//! small worker pool, each worker sweeping its own registry of
//! nonblocking connections.
//!
//! Readiness is level-triggered over `ErrorKind::WouldBlock` — a sweep
//! ticks every connection (each tick makes bounded progress, see
//! [`crate::conn`]), and a sweep in which nothing progressed parks in
//! `recv_timeout` on the worker's inbox for one poll interval, so an
//! idle worker wakes either for a new connection or for the next poll
//! tick. Cost scales with *active* connections per sweep plus one cheap
//! `WouldBlock` read per idle one, which is what lets a fixed pool
//! carry thousands of mostly-idle sockets where the threaded core
//! needed a thread each.
//!
//! Drain: the dispatcher sees the flag, stops accepting, and drops the
//! inbox senders; each worker then finalizes its connections (bounded
//! server-side work — abort/flush, one best-effort write, close) and
//! exits. [`crate::Server::drain`] joins dispatcher + workers, so the
//! whole stop is bounded by the poll interval and pipeline joins, never
//! by client behavior.

use std::net::{Shutdown as SocketShutdown, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::conn::{IngestConn, QueryConn};
use crate::protocol;
use crate::server::{Port, Shared};

/// Per-worker read scratch buffer (shared across that worker's
/// connections — ticks copy out of it before the next read).
const SCRATCH: usize = 64 * 1024;

/// Most connections accepted from one listener per dispatcher pass,
/// so a connection storm on one port cannot starve the other.
const ACCEPT_BATCH: usize = 64;

/// One registered connection of either port.
enum Conn {
    // Boxed: the ingest machine (framer + pipeline handle) is several
    // times the query machine's size, and the registry `Vec` should
    // stay compact when thousands of query connections dominate it.
    Ingest(Box<IngestConn>),
    Query(QueryConn),
}

impl Conn {
    fn tick(&mut self, scratch: &mut [u8]) -> (bool, bool) {
        match self {
            Conn::Ingest(c) => c.tick(scratch),
            Conn::Query(c) => c.tick(scratch),
        }
    }

    fn finalize(&mut self) {
        match self {
            Conn::Ingest(c) => c.finalize(),
            Conn::Query(c) => c.finalize(),
        }
    }

    /// Whether this connection is waiting on the ingest pipeline (a
    /// parser thread) rather than on its peer.
    fn backpressured(&self) -> bool {
        match self {
            Conn::Ingest(c) => c.backpressured(),
            Conn::Query(_) => false,
        }
    }
}

/// Spawns the dispatcher and the worker pool of the event core.
pub(crate) fn start(
    ingest_listener: TcpListener,
    query_listener: TcpListener,
    shared: &Arc<Shared>,
) -> Vec<JoinHandle<()>> {
    let worker_count = shared.config().event_workers;
    let mut threads = Vec::with_capacity(worker_count + 1);
    let mut inboxes = Vec::with_capacity(worker_count);
    for _ in 0..worker_count {
        let (tx, rx) = std::sync::mpsc::channel::<Conn>();
        inboxes.push(tx);
        let s = Arc::clone(shared);
        threads.push(std::thread::spawn(move || worker(&rx, &s)));
    }
    let s = Arc::clone(shared);
    threads.push(std::thread::spawn(move || {
        dispatch(&ingest_listener, &query_listener, &inboxes, &s);
    }));
    threads
}

/// The accept loop over both (nonblocking) listeners: enforce caps,
/// build connection state machines, deal them round-robin to the
/// workers. Sleeps one poll interval when neither listener had anything,
/// and exits on drain — dropping `inboxes`, which is what tells the
/// workers to finalize and stop.
fn dispatch(
    ingest_listener: &TcpListener,
    query_listener: &TcpListener,
    inboxes: &[Sender<Conn>],
    shared: &Arc<Shared>,
) {
    let mut next = 0usize;
    loop {
        if shared.is_draining() {
            return;
        }
        let mut progressed = false;
        progressed |= accept_batch(ingest_listener, Port::Ingest, inboxes, &mut next, shared);
        progressed |= accept_batch(query_listener, Port::Query, inboxes, &mut next, shared);
        if !progressed {
            std::thread::sleep(shared.config().poll_interval);
        }
    }
}

/// Accepts up to [`ACCEPT_BATCH`] connections from one listener;
/// returns whether any arrived.
fn accept_batch(
    listener: &TcpListener,
    port: Port,
    inboxes: &[Sender<Conn>],
    next: &mut usize,
    shared: &Arc<Shared>,
) -> bool {
    let mut progressed = false;
    for _ in 0..ACCEPT_BATCH {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => break, // WouldBlock or transient (e.g. fd exhaustion)
        };
        progressed = true;
        if shared.is_draining() {
            let _ = stream.shutdown(SocketShutdown::Both);
            break;
        }
        let Some(slot) = shared.try_acquire_slot(port) else {
            refuse(&stream, port, shared);
            continue;
        };
        let conn = match port {
            Port::Ingest => IngestConn::new(stream, Arc::clone(shared), slot)
                .map(|c| Conn::Ingest(Box::new(c))),
            Port::Query => QueryConn::new(stream, Arc::clone(shared), slot).map(Conn::Query),
        };
        let Some(conn) = conn else { continue };
        // Round-robin across both ports: ingest and query connections
        // mix on every worker, so neither workload can monopolize one.
        let slot = *next % inboxes.len();
        *next = next.wrapping_add(1);
        // Send fails only mid-drain (worker gone); the connection drops
        // and its socket closes, same as racing the drain at accept.
        let _ = inboxes[slot].send(conn);
    }
    progressed
}

/// Refuses an over-cap connection: count it, best-effort one `ERR`
/// line (nonblocking — a refusal must never stall the dispatcher), and
/// close.
fn refuse(stream: &TcpStream, port: Port, shared: &Shared) {
    shared.reject_connection(port);
    let cap = port.cap(shared.config());
    if stream.set_nonblocking(true).is_ok() {
        use std::io::Write;
        let mut w = stream;
        let _ = w.write(
            protocol::render_error(&format!("connection limit reached ({cap} active)")).as_bytes(),
        );
    }
    let _ = stream.shutdown(SocketShutdown::Both);
}

/// One worker: sweep the registry, collect new connections from the
/// inbox, park for a poll interval when nothing progressed. On drain
/// (inbox disconnected or flag raised) finalize everything and exit.
fn worker(inbox: &Receiver<Conn>, shared: &Arc<Shared>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH];
    loop {
        if shared.is_draining() {
            for conn in &mut conns {
                conn.finalize();
            }
            // The dispatcher may have dealt connections here after our
            // last sweep; they must be finalized too, not leaked.
            while let Ok(mut conn) = inbox.try_recv() {
                conn.finalize();
            }
            return;
        }
        let mut progressed = false;
        while let Ok(conn) = inbox.try_recv() {
            conns.push(conn);
            progressed = true;
        }
        conns.retain_mut(|conn| {
            let (p, done) = conn.tick(&mut scratch);
            progressed |= p;
            !done
        });
        if !conns.is_empty() {
            shared.metrics().event_sweeps.inc();
        }
        if !progressed {
            shared.metrics().event_parks.inc();
            // Park on the inbox: a new connection wakes us immediately,
            // otherwise the timeout is the level-trigger poll tick. A
            // connection backpressured on the ingest pipeline is
            // unblocked by a parser thread — typically within
            // microseconds — not by its peer, so recheck on a much
            // shorter tick or bulk ingest gets quantized to the poll
            // interval.
            let poll = shared.config().poll_interval;
            let wait = if conns.iter().any(Conn::backpressured) {
                poll.min(std::time::Duration::from_micros(100))
            } else {
                poll
            };
            match inbox.recv_timeout(wait) {
                Ok(conn) => conns.push(conn),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                    // Dispatcher gone: the drain flag is (about to be)
                    // up; sleep one tick and loop into the drain arm.
                    std::thread::sleep(shared.config().poll_interval);
                }
            }
        }
    }
}
