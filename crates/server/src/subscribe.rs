//! Standing smoothing subscriptions: the push half of the query
//! protocol.
//!
//! `SUBSCRIBE` registers a selector with this registry; from then on the
//! ingest pipelines' [`asap_tsdb::ApplyHook`] feeds every applied point
//! into a shared [`MultiStreamingAsap`] runtime (one per distinct
//! `EVERY` interval, so subscriptions with the same cadence share the
//! smoothing work), and each emitted [`Frame`] is rendered once and
//! fanned out to every matching subscriber's [`Outbox`].
//!
//! # Ordering
//!
//! The hook fires **post-reorder**, inside the shard sink, after the
//! store write committed — so per series, the frame stream is computed
//! from exactly the store's apply order. This is what makes the pushed
//! stream provably equivalent to polling the store: replaying a series'
//! stored points through a fresh [`asap_core::StreamingAsap`] with the
//! same template reproduces the pushed `FRAME` lines byte for byte.
//!
//! # Backpressure
//!
//! The hook runs on shard-writer threads and must never block on a slow
//! subscriber. Each subscriber owns a bounded [`Outbox`] of rendered
//! lines; when the connection stops draining it (stalled socket, output
//! buffer at its high-water mark), the oldest lines are dropped and
//! counted as lag — ingest never waits. The connection layers then
//! apply their usual stalled-peer policy (`write_deadline`) on top, so
//! a subscriber that stops reading entirely is disconnected, not
//! carried.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use asap_core::{AlertGate, DeviationAlerter, Frame, MultiStreamingAsap, StreamingConfig};
use asap_tsdb::{Selector, SeriesKey};

use crate::protocol;

/// Deviant-run length (in smoothed points) an `ALERT k=<sigma>`
/// subscription requires before a deviation fires — filters one-pane
/// transients without a per-subscription knob.
pub(crate) const ALERT_MIN_RUN: usize = 3;

/// Most rendered push lines a subscriber's outbox buffers before the
/// oldest are lag-dropped. Sized to cover several refresh cycles of a
/// busy selector; a reader that falls further behind than this is not
/// keeping up and loses frames rather than stalling ingest.
pub(crate) const OUTBOX_MAX_LINES: usize = 4096;

/// The bounded per-subscriber queue of rendered `FRAME`/`ALERT` lines,
/// shared between the registry (producer, on shard-writer threads) and
/// the owning query connection (consumer, on its I/O thread).
#[derive(Debug, Default)]
pub(crate) struct Outbox {
    queue: Mutex<VecDeque<String>>,
}

impl Outbox {
    /// Queues one line; returns how many old lines were dropped to make
    /// room (0 when the subscriber is keeping up).
    fn push(&self, line: String) -> usize {
        let mut queue = self.queue.lock().expect("outbox poisoned");
        queue.push_back(line);
        let mut dropped = 0;
        while queue.len() > OUTBOX_MAX_LINES {
            queue.pop_front();
            dropped += 1;
        }
        dropped
    }

    /// Takes the oldest pending line, if any.
    pub(crate) fn pop(&self) -> Option<String> {
        self.queue.lock().expect("outbox poisoned").pop_front()
    }

    /// Lines currently queued (pushed but not yet drained by the
    /// owning connection).
    pub(crate) fn len(&self) -> usize {
        self.queue.lock().expect("outbox poisoned").len()
    }
}

/// One standing subscription.
struct Subscription {
    id: u64,
    selector: Selector,
    every: usize,
    /// `ALERT k=<sigma>` threshold; `None` pushes frames only.
    k_sigma: Option<f64>,
    /// Per-series edge-trigger state (created lazily on first frame).
    gates: HashMap<SeriesKey, AlertGate>,
    outbox: Arc<Outbox>,
}

/// Which subscriptions a series key currently fans out to, grouped by
/// refresh interval so each group's shared runtime is pushed exactly
/// once per point. Cached per key and invalidated whenever the
/// subscription set changes.
struct Plan {
    groups: Vec<(usize, Vec<u64>)>,
}

#[derive(Default)]
struct Inner {
    subs: BTreeMap<u64, Subscription>,
    /// One shared smoothing runtime per distinct `EVERY` interval.
    runtimes: BTreeMap<usize, MultiStreamingAsap<SeriesKey>>,
    plans: HashMap<SeriesKey, Arc<Plan>>,
    /// Points counted by runtimes that were dropped whole (their last
    /// subscriber unsubscribed) — keeps `points_seen` monotonic.
    retired_points: u64,
}

/// Counter snapshot for `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SubscriptionStats {
    /// Standing subscriptions right now.
    pub active: usize,
    /// Subscriptions ever created.
    pub total: u64,
    /// Series currently tracked across all shared runtimes.
    pub series_tracked: usize,
    /// Points fanned into subscription runtimes (a point matched by two
    /// differently-paced subscriptions counts once per runtime).
    pub points_seen: u64,
    /// `FRAME` lines queued to subscribers.
    pub frames_pushed: u64,
    /// `ALERT` lines queued to subscribers.
    pub alerts_pushed: u64,
    /// Push lines dropped because a subscriber lagged past its outbox
    /// bound.
    pub frames_lagged: u64,
    /// Lines currently sitting in subscriber outboxes (pushed, not yet
    /// drained) — the instantaneous backpressure depth.
    pub outbox_lines: usize,
}

/// The server-wide subscription registry; lives in
/// [`crate::server::Shared`], fed by every ingest pipeline's apply hook.
pub(crate) struct Registry {
    inner: Mutex<Inner>,
    /// Lock-free fast-path gate: the number of standing subscriptions.
    /// Ingest with no subscribers pays one atomic load per point.
    active: AtomicUsize,
    next_id: AtomicU64,
    template: StreamingConfig,
    default_every: usize,
    max_subscriptions: usize,
    total: AtomicU64,
    frames_pushed: AtomicU64,
    alerts_pushed: AtomicU64,
    frames_lagged: AtomicU64,
}

impl Registry {
    /// Builds the registry. `window_points`/`resolution` shape every
    /// subscription's smoothing template (validated by the caller);
    /// `default_every` is the refresh interval `SUBSCRIBE` without
    /// `EVERY` gets.
    pub(crate) fn new(
        window_points: usize,
        resolution: usize,
        default_every: usize,
        max_subscriptions: usize,
    ) -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            active: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            template: StreamingConfig::new(window_points, resolution, default_every),
            default_every,
            max_subscriptions,
            total: AtomicU64::new(0),
            frames_pushed: AtomicU64::new(0),
            alerts_pushed: AtomicU64::new(0),
            frames_lagged: AtomicU64::new(0),
        }
    }

    /// Registers a subscription; returns `(id, effective interval)`.
    pub(crate) fn subscribe(
        &self,
        selector: Selector,
        every: Option<usize>,
        k_sigma: Option<f64>,
        outbox: Arc<Outbox>,
    ) -> Result<(u64, usize), String> {
        let every = every.unwrap_or(self.default_every);
        let mut inner = self.inner.lock().expect("subscription registry poisoned");
        if inner.subs.len() >= self.max_subscriptions {
            return Err(format!(
                "subscription cap reached ({} standing)",
                self.max_subscriptions
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        inner.runtimes.entry(every).or_insert_with(|| {
            let mut template = self.template.clone();
            template.refresh_interval = every;
            MultiStreamingAsap::new(template)
        });
        inner.subs.insert(
            id,
            Subscription {
                id,
                selector,
                every,
                k_sigma,
                gates: HashMap::new(),
                outbox,
            },
        );
        inner.plans.clear();
        self.active.store(inner.subs.len(), Ordering::Release);
        self.total.fetch_add(1, Ordering::AcqRel);
        Ok((id, every))
    }

    /// Cancels the given subscriptions (unknown ids are ignored);
    /// returns how many existed. Runtimes whose last subscriber left
    /// are dropped whole; in surviving runtimes, series no remaining
    /// subscriber matches are evicted so churned keys cannot leak.
    pub(crate) fn unsubscribe(&self, ids: &[u64]) -> usize {
        if ids.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().expect("subscription registry poisoned");
        let mut removed = 0;
        for id in ids {
            if inner.subs.remove(id).is_some() {
                removed += 1;
            }
        }
        if removed > 0 {
            inner.plans.clear();
            let Inner {
                subs,
                runtimes,
                retired_points,
                ..
            } = &mut *inner;
            runtimes.retain(|every, runtime| {
                let members: Vec<&Subscription> =
                    subs.values().filter(|s| s.every == *every).collect();
                if members.is_empty() {
                    *retired_points += runtime.total_points();
                    false
                } else {
                    runtime.retain(|key, _| members.iter().any(|s| s.selector.matches(key)));
                    true
                }
            });
            self.active.store(inner.subs.len(), Ordering::Release);
        }
        removed
    }

    /// The ingest apply hook: feeds one applied point to every matching
    /// subscription runtime and fans emitted frames (and edge-triggered
    /// alerts) out to subscriber outboxes. Runs on shard-writer threads;
    /// never blocks on subscribers (see the module docs).
    pub(crate) fn on_point(&self, key: &SeriesKey, value: f64) {
        if self.active.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("subscription registry poisoned");
        let inner = &mut *inner;
        let plan = match inner.plans.get(key) {
            Some(plan) => Arc::clone(plan),
            None => {
                let mut groups: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
                for sub in inner.subs.values() {
                    if sub.selector.matches(key) {
                        groups.entry(sub.every).or_default().push(sub.id);
                    }
                }
                let plan = Arc::new(Plan {
                    groups: groups.into_iter().collect(),
                });
                inner.plans.insert(key.clone(), Arc::clone(&plan));
                plan
            }
        };
        for (every, ids) in &plan.groups {
            let Some(runtime) = inner.runtimes.get_mut(every) else {
                continue;
            };
            let frame = match runtime.push_with(key, value, SeriesKey::clone) {
                Ok(Some(frame)) => frame,
                _ => continue,
            };
            // Render once per group; every matching subscriber gets the
            // same bytes.
            let line = protocol::render_frame(key, &frame);
            for id in ids {
                let Some(sub) = inner.subs.get_mut(id) else {
                    continue;
                };
                self.deliver(sub, key, &frame, &line);
            }
        }
    }

    fn deliver(&self, sub: &mut Subscription, key: &SeriesKey, frame: &Frame, line: &str) {
        let dropped = sub.outbox.push(line.to_owned());
        self.frames_pushed.fetch_add(1, Ordering::AcqRel);
        if dropped > 0 {
            self.frames_lagged.fetch_add(dropped as u64, Ordering::AcqRel);
        }
        if let Some(k_sigma) = sub.k_sigma {
            let gate = sub
                .gates
                .entry(key.clone())
                .or_insert_with(|| AlertGate::new(DeviationAlerter::new(k_sigma, ALERT_MIN_RUN)));
            if let Some(alert) = gate.check(frame) {
                let dropped = sub.outbox.push(protocol::render_alert(key, &alert));
                self.alerts_pushed.fetch_add(1, Ordering::AcqRel);
                if dropped > 0 {
                    self.frames_lagged.fetch_add(dropped as u64, Ordering::AcqRel);
                }
            }
        }
    }

    /// Counter snapshot for `STATS`.
    pub(crate) fn stats(&self) -> SubscriptionStats {
        let inner = self.inner.lock().expect("subscription registry poisoned");
        // One connection's subscriptions share one outbox; dedup by
        // allocation so shared queues are counted once.
        let mut seen: Vec<*const Outbox> = Vec::new();
        let mut outbox_lines = 0usize;
        for sub in inner.subs.values() {
            let ptr = Arc::as_ptr(&sub.outbox);
            if !seen.contains(&ptr) {
                seen.push(ptr);
                outbox_lines += sub.outbox.len();
            }
        }
        SubscriptionStats {
            outbox_lines,
            active: inner.subs.len(),
            total: self.total.load(Ordering::Acquire),
            series_tracked: inner.runtimes.values().map(MultiStreamingAsap::len).sum(),
            points_seen: inner.retired_points
                + inner
                    .runtimes
                    .values()
                    .map(MultiStreamingAsap::total_points)
                    .sum::<u64>(),
            frames_pushed: self.frames_pushed.load(Ordering::Acquire),
            alerts_pushed: self.alerts_pushed.load(Ordering::Acquire),
            frames_lagged: self.frames_lagged.load(Ordering::Acquire),
        }
    }
}

/// Per-connection subscription state: the outbox push lines arrive on,
/// and the ids this connection owns. Dropping the session (connection
/// teardown, however it happens) cancels every owned subscription —
/// the "automatic teardown on disconnect" half of the protocol
/// contract.
pub(crate) struct SubSession {
    registry: Arc<Registry>,
    outbox: Arc<Outbox>,
    ids: Vec<u64>,
}

impl SubSession {
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        SubSession {
            registry,
            outbox: Arc::new(Outbox::default()),
            ids: Vec::new(),
        }
    }

    /// The queue the registry pushes this connection's lines onto.
    pub(crate) fn outbox(&self) -> &Arc<Outbox> {
        &self.outbox
    }

    /// Whether this connection owns any standing subscriptions.
    pub(crate) fn has_subs(&self) -> bool {
        !self.ids.is_empty()
    }

    /// Registers a subscription owned by this connection.
    pub(crate) fn subscribe(
        &mut self,
        selector: Selector,
        every: Option<usize>,
        k_sigma: Option<f64>,
    ) -> Result<(u64, usize), String> {
        let (id, every) =
            self.registry
                .subscribe(selector, every, k_sigma, Arc::clone(&self.outbox))?;
        self.ids.push(id);
        Ok((id, every))
    }

    /// Cancels one owned subscription (`Some(id)`) or all of them
    /// (`None`); errors on an id this connection does not own.
    pub(crate) fn unsubscribe(&mut self, id: Option<u64>) -> Result<usize, String> {
        match id {
            Some(id) => {
                let Some(pos) = self.ids.iter().position(|&owned| owned == id) else {
                    return Err(format!("unknown subscription id {id}"));
                };
                self.ids.swap_remove(pos);
                Ok(self.registry.unsubscribe(&[id]))
            }
            None => {
                let ids = std::mem::take(&mut self.ids);
                Ok(self.registry.unsubscribe(&ids))
            }
        }
    }
}

impl Drop for SubSession {
    fn drop(&mut self) {
        if !self.ids.is_empty() {
            self.registry.unsubscribe(&self.ids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<Registry> {
        // Pane size 10 (1000/100): warm after 40 points per series.
        Arc::new(Registry::new(1_000, 100, 50, 8))
    }

    fn key(name: &str) -> SeriesKey {
        SeriesKey::metric(name)
    }

    #[test]
    fn frames_fan_out_to_matching_subscribers_only() {
        let reg = registry();
        let cpu = Arc::new(Outbox::default());
        let all = Arc::new(Outbox::default());
        reg.subscribe(Selector::metric("cpu"), None, None, Arc::clone(&cpu)).unwrap();
        reg.subscribe(Selector::any(), None, None, Arc::clone(&all)).unwrap();
        for i in 0..200 {
            reg.on_point(&key("cpu"), (i as f64 / 20.0).sin());
            reg.on_point(&key("mem"), (i as f64 / 10.0).cos());
        }
        let count = |outbox: &Outbox| {
            let mut frames = 0;
            while outbox.pop().is_some() {
                frames += 1;
            }
            frames
        };
        // Warm at 40, refresh every 50 → frames at 50, 100, 150, 200.
        assert_eq!(count(&cpu), 4, "metric-selector sub sees cpu only");
        assert_eq!(count(&all), 8, "wildcard sub sees both series");
        let stats = reg.stats();
        assert_eq!(stats.frames_pushed, 12);
        assert_eq!(stats.series_tracked, 2, "one shared runtime for both subs");
        assert_eq!(stats.points_seen, 400);
        assert_eq!(stats.frames_lagged, 0);
    }

    #[test]
    fn unsubscribe_evicts_keys_no_subscriber_matches() {
        let reg = registry();
        let a = Arc::new(Outbox::default());
        let b = Arc::new(Outbox::default());
        let (id_a, _) = reg.subscribe(Selector::metric("cpu"), None, None, a).unwrap();
        reg.subscribe(Selector::metric("mem"), None, None, b).unwrap();
        for i in 0..100 {
            reg.on_point(&key("cpu"), i as f64);
            reg.on_point(&key("mem"), i as f64);
        }
        assert_eq!(reg.stats().series_tracked, 2);
        let points_before = reg.stats().points_seen;

        // Dropping the cpu subscription must evict the cpu operator from
        // the shared runtime (same EVERY group) without losing counters.
        assert_eq!(reg.unsubscribe(&[id_a]), 1);
        let stats = reg.stats();
        assert_eq!(stats.active, 1);
        assert_eq!(stats.series_tracked, 1, "cpu operator evicted");
        assert_eq!(stats.points_seen, points_before, "counters survive eviction");

        // And a now-unmatched point is ignored entirely.
        reg.on_point(&key("cpu"), 1.0);
        assert_eq!(reg.stats().points_seen, points_before);
        assert_eq!(reg.stats().series_tracked, 1);
    }

    #[test]
    fn dropping_the_last_subscriber_drops_the_runtime() {
        let reg = registry();
        let outbox = Arc::new(Outbox::default());
        let (id, _) = reg.subscribe(Selector::any(), Some(10), None, outbox).unwrap();
        for i in 0..60 {
            reg.on_point(&key("cpu"), i as f64);
        }
        let points = reg.stats().points_seen;
        assert_eq!(points, 60);
        reg.unsubscribe(&[id]);
        let stats = reg.stats();
        assert_eq!(stats.active, 0);
        assert_eq!(stats.series_tracked, 0);
        assert_eq!(stats.points_seen, points, "retired points stay counted");
        reg.on_point(&key("cpu"), 1.0);
        assert_eq!(reg.stats().points_seen, points, "no subscribers, no work");
    }

    #[test]
    fn subscription_cap_is_enforced() {
        let reg = registry();
        let mut keep = Vec::new();
        for _ in 0..8 {
            keep.push(reg.subscribe(Selector::any(), None, None, Arc::new(Outbox::default())));
        }
        let err = reg
            .subscribe(Selector::any(), None, None, Arc::new(Outbox::default()))
            .unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn lagging_outbox_drops_oldest_lines_not_ingest() {
        let reg = registry();
        let outbox = Arc::new(Outbox::default());
        // Refresh every point once warm: tens of thousands of frames
        // into an outbox nobody drains.
        reg.subscribe(Selector::any(), Some(1), None, Arc::clone(&outbox)).unwrap();
        let n = 40 + OUTBOX_MAX_LINES + 500;
        for i in 0..n {
            reg.on_point(&key("cpu"), (i as f64 / 30.0).sin());
        }
        let stats = reg.stats();
        assert_eq!(stats.points_seen, n as u64, "every point still ingested");
        assert!(stats.frames_lagged > 0, "overflow counted as lag");
        let mut queued = 0;
        while outbox.pop().is_some() {
            queued += 1;
        }
        assert_eq!(queued, OUTBOX_MAX_LINES, "queue stays bounded");
        assert_eq!(
            stats.frames_pushed - stats.frames_lagged,
            queued as u64,
            "pushed = delivered + lagged"
        );
    }

    #[test]
    fn session_drop_tears_down_its_subscriptions() {
        let reg = registry();
        {
            let mut session = SubSession::new(Arc::clone(&reg));
            session.subscribe(Selector::any(), None, None).unwrap();
            session.subscribe(Selector::metric("cpu"), Some(10), None).unwrap();
            assert_eq!(reg.stats().active, 2);
            assert!(session.has_subs());
        }
        assert_eq!(reg.stats().active, 0, "disconnect tears everything down");
    }

    #[test]
    fn session_unsubscribe_owns_its_ids_only() {
        let reg = registry();
        let mut theirs = SubSession::new(Arc::clone(&reg));
        let (their_id, _) = theirs.subscribe(Selector::any(), None, None).unwrap();
        let mut mine = SubSession::new(Arc::clone(&reg));
        let (my_id, _) = mine.subscribe(Selector::any(), None, None).unwrap();

        let err = mine.unsubscribe(Some(their_id)).unwrap_err();
        assert!(err.contains("unknown subscription id"), "{err}");
        assert_eq!(mine.unsubscribe(Some(my_id)).unwrap(), 1);
        assert_eq!(mine.unsubscribe(None).unwrap(), 0);
        assert_eq!(reg.stats().active, 1, "their subscription untouched");
    }

    #[test]
    fn alert_subscriptions_push_edge_triggered_alert_lines() {
        let reg = Arc::new(Registry::new(2_000, 200, 100, 8));
        let outbox = Arc::new(Outbox::default());
        reg.subscribe(Selector::any(), None, Some(2.5), Arc::clone(&outbox)).unwrap();
        // Stable periodic signal, then a sustained dip well inside the
        // noise band — the alert.rs utility-stream shape.
        for i in 0..4_000usize {
            let seasonal = (std::f64::consts::TAU * i as f64 / 480.0).sin();
            let noise = 2.0 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
            let dip = if i >= 3_000 { -8.0 } else { 0.0 };
            reg.on_point(&key("gen"), 50.0 + seasonal + noise + dip);
        }
        let mut frames = 0;
        let mut alerts = Vec::new();
        while let Some(line) = outbox.pop() {
            if line.starts_with("ALERT ") {
                alerts.push(line);
            } else {
                assert!(line.starts_with("FRAME "), "{line}");
                frames += 1;
            }
        }
        assert!(frames > 10, "frames flowed ({frames})");
        assert!(!alerts.is_empty(), "the dip must alert");
        assert!(
            alerts.len() < 5,
            "edge-triggered: one alert per shift, not per frame ({alerts:?})"
        );
        assert!(alerts[0].contains("dir=down"), "{}", alerts[0]);
        assert_eq!(reg.stats().alerts_pushed, alerts.len() as u64);
    }
}
