//! The TCP server: ingest listener, query/ops listener, background
//! compaction, graceful shutdown — over one of two interchangeable I/O
//! cores selected by [`ServerConfig::core`].
//!
//! [`CoreMode::Event`] (the default) multiplexes all connections onto a
//! small worker pool sweeping nonblocking sockets ([`crate::event`] /
//! [`crate::conn`]); [`CoreMode::Threaded`] is the legacy
//! thread-per-connection fallback ([`crate::threaded`]). Both speak the
//! same protocol and share this module's lifecycle: everything polls
//! the drain flag at [`ServerConfig::poll_interval`] granularity, so a
//! graceful shutdown needs no signal machinery — set the flag and join.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asap_core::Asap;
use asap_tsdb::obs::{self, MetricSample};
use asap_tsdb::{
    checkpoint_sharded, pipeline_ingest, ApplyHook, ChainCheckpointReport, CheckpointChain,
    CompactionReport, Counter, Histogram, IngestConfig, IngestMetrics, IngestReport, ObsRegistry,
    RangeQuery, RetentionPolicy, Schedule, Selector, ShardedDb, SnapshotError, StreamProgress,
    TsdbError, Wal, WalConfig, WalMetrics, WalReplayReport, ROLLUP_TAG, SELF_TAG,
};

use crate::protocol::{self, Command};
use crate::subscribe::{Registry, SubSession};
use crate::{checkpoint, event, scheduler, threaded};

/// Which I/O core serves the two listeners.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoreMode {
    /// Event-driven (the default): a fixed worker pool sweeping
    /// nonblocking connection state machines — thousands of mostly-idle
    /// connections cost readiness checks, not threads.
    #[default]
    Event,
    /// Legacy thread-per-connection: one blocking handler thread per
    /// accepted socket. Conservative fallback (`--core threaded`);
    /// concurrency is bounded by the connection caps.
    Threaded,
}

/// Configuration of an [`Server`] instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address of the ingest listener (default `127.0.0.1:0` — an
    /// ephemeral port, reported by [`Server::ingest_addr`]).
    pub ingest_addr: String,
    /// Bind address of the query/ops listener (default `127.0.0.1:0`).
    pub query_addr: String,
    /// Concurrent ingest connection cap (default 64). Connections over
    /// the cap are refused with one `ERR` line. Each accepted connection
    /// owns a full [`asap_tsdb::StreamIngestor`] pipeline (parser and
    /// writer threads), so the cap bounds server threads and memory.
    pub max_ingest_connections: usize,
    /// Concurrent query/ops connection cap (default 64), enforced the
    /// same way — one connection is one server thread, so remote
    /// clients must not be able to spawn unboundedly many.
    pub max_query_connections: usize,
    /// The streaming pipeline configuration every ingest connection runs
    /// with (parsers, queue depth, chunk size, lateness).
    pub ingest: IngestConfig,
    /// Fallback timestamp base for records without one (see
    /// [`asap_tsdb::ingest::pipeline_ingest`]).
    pub default_ts: i64,
    /// Background compaction; `None` disables the scheduler thread.
    pub compaction: Option<CompactionConfig>,
    /// Where to write a final snapshot during shutdown, after every
    /// connection has drained (`None` skips it).
    pub final_snapshot: Option<PathBuf>,
    /// Write-ahead log directory + fsync policy (`None` disables
    /// durability). When set, [`Server::start`] first replays any
    /// existing log files into the store (crash recovery — pair it with
    /// loading the matching `final_snapshot` beforehand), then opens a
    /// fresh log generation that every ingest connection appends applied
    /// points to. The drain-time final snapshot becomes a *checkpoint*:
    /// rotate the log, save, then discard the covered generations.
    /// Client-issued `SNAPSHOT <name>` exports never truncate the log —
    /// only the snapshot recovery actually boots from may.
    pub wal: Option<WalConfig>,
    /// Background incremental checkpoints; `None` disables the
    /// checkpoint scheduler thread and the on-disk chain. When set, the
    /// server maintains a [`CheckpointChain`] in the configured
    /// directory: each scheduled pass rotates the WAL, writes only the
    /// series that changed since the previous pass, commits the chain
    /// manifest, and discards the covered log generations — so both the
    /// log and the checkpoint cost stay bounded by write activity. The
    /// drain-time final snapshot and client `SNAPSHOT` commands go
    /// through the same chain (see [`Server::shutdown`]).
    pub checkpoint: Option<CheckpointConfig>,
    /// Directory `SNAPSHOT <name>` targets resolve inside. `None`
    /// (the default) disables the command: the query port may be bound
    /// on a non-loopback address, and an unauthenticated client must
    /// not get to pick arbitrary filesystem paths for the server to
    /// write with its privileges. Requests naming an absolute path or
    /// escaping the directory (`..`) are refused.
    pub snapshot_dir: Option<PathBuf>,
    /// Socket read timeout / event-loop sweep granularity — how fast
    /// idle paths notice the drain flag (default 25ms). Smaller values
    /// shut down faster at the cost of more idle wakeups.
    pub poll_interval: Duration,
    /// Which I/O core serves the listeners (default
    /// [`CoreMode::Event`]).
    pub core: CoreMode,
    /// Worker threads of the event core (default 2). Each worker sweeps
    /// its share of the connections; more workers add read/execute
    /// parallelism, not connection capacity.
    pub event_workers: usize,
    /// Most bytes one connection may read per event-loop tick (default
    /// 64 KiB), so one firehose connection cannot starve its worker's
    /// siblings.
    pub read_budget: usize,
    /// How long a peer with pending response bytes may go without
    /// accepting any before it is disconnected (default 5s). On the
    /// threaded core this doubles as the socket write timeout, fixing
    /// the stalled-reader `write_all` hang that could wedge
    /// [`Server::shutdown`]'s drain.
    pub write_deadline: Duration,
    /// Log one line per connection close / compaction error to stderr
    /// (default `false`; the `asap-server` binary turns it on).
    pub verbose: bool,
    /// Raw points a subscription's smoothing window covers per series
    /// (default 10 000) — the `SUBSCRIBE` analogue of a `SMOOTH`
    /// request's time range.
    pub subscribe_window: usize,
    /// Display resolution (pixels, = panes kept) of subscription frames
    /// (default 100). Together with `subscribe_window` this must give a
    /// window of at least 4 panes, or the server refuses to start.
    pub subscribe_resolution: usize,
    /// Refresh interval (raw points per series between frames) a
    /// `SUBSCRIBE` without `EVERY` gets (default 1000).
    pub subscribe_every: usize,
    /// Server-wide cap on standing subscriptions (default 1024);
    /// `SUBSCRIBE` over the cap is refused with an `ERR` line.
    pub max_subscriptions: usize,
    /// Log any query/ops request whose total handling time (parse +
    /// execute + render) reaches this threshold as one structured
    /// `slow_query` warning line (default `None` — disabled).
    pub slow_query: Option<Duration>,
    /// Background self-scrape interval: every tick the server renders
    /// its own metrics registry as line protocol tagged
    /// [`asap_tsdb::SELF_TAG`] and ingests it through the normal
    /// pipeline — WAL, checkpoints, and subscriptions all apply, so the
    /// server's own telemetry is queryable (`RANGE` / `SMOOTH` /
    /// `SUBSCRIBE`) like any other series (default `None` — disabled).
    pub self_scrape: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            ingest_addr: "127.0.0.1:0".to_owned(),
            query_addr: "127.0.0.1:0".to_owned(),
            max_ingest_connections: 64,
            max_query_connections: 64,
            ingest: IngestConfig::default(),
            default_ts: 0,
            compaction: None,
            final_snapshot: None,
            wal: None,
            checkpoint: None,
            snapshot_dir: None,
            poll_interval: Duration::from_millis(25),
            core: CoreMode::Event,
            event_workers: 2,
            read_budget: 64 * 1024,
            write_deadline: Duration::from_secs(5),
            verbose: false,
            subscribe_window: 10_000,
            subscribe_resolution: 100,
            subscribe_every: 1_000,
            max_subscriptions: 1_024,
            slow_query: None,
            self_scrape: None,
        }
    }
}

/// What the background compaction scheduler runs and when.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Retention/rollup policy driven by the scheduler.
    pub policy: RetentionPolicy,
    /// Tick plan: base interval plus jitter (see
    /// [`asap_tsdb::Schedule`]).
    pub schedule: Schedule,
    /// Seed of the scheduler's jitter RNG — fixed so a server's tick
    /// plan is reproducible run to run.
    pub seed: u64,
    /// Where the compactor's logical `now` comes from.
    pub clock: CompactionClock,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            policy: RetentionPolicy::default(),
            schedule: Schedule::every(Duration::from_secs(60))
                .with_jitter(Duration::from_secs(5)),
            seed: 0,
            clock: CompactionClock::WallClock,
        }
    }
}

/// What the background checkpoint scheduler runs and when: the on-disk
/// incremental chain plus the tick plan driving it.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The chain directory ([`CheckpointChain::open`] creates it).
    /// Recovery loads it like any snapshot path —
    /// [`asap_tsdb::recover_sharded`] and `ShardedDb::load` dispatch on
    /// directories transparently.
    pub dir: PathBuf,
    /// Tick plan: base interval plus jitter (see
    /// [`asap_tsdb::Schedule`]).
    pub schedule: Schedule,
    /// Seed of the scheduler's jitter RNG — fixed so a server's tick
    /// plan is reproducible run to run.
    pub seed: u64,
    /// Delta links the chain may accumulate before a checkpoint
    /// re-bases (writes a fresh full base and drops the old chain).
    /// Must be at least 1; the default is 8.
    pub chain_depth: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            dir: PathBuf::from("checkpoints"),
            schedule: Schedule::every(Duration::from_secs(300))
                .with_jitter(Duration::from_secs(15)),
            seed: 0,
            chain_depth: 8,
        }
    }
}

/// Source of the logical `now` handed to [`asap_tsdb::Compactor`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionClock {
    /// Unix wall-clock seconds — for telemetry timestamped in epoch
    /// seconds, the production default.
    WallClock,
    /// The newest timestamp currently stored across all shards — time
    /// advances with the data, so retention works for any timestamp
    /// unit (and for tests driving logical time). Ticks on an empty
    /// store are counted as skipped.
    DataWatermark,
}

/// Failure starting an [`Server`].
#[derive(Debug)]
pub enum ServerError {
    /// Socket setup failed (bind, local_addr).
    Io(std::io::Error),
    /// A configuration knob failed validation.
    Config(TsdbError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Config(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<TsdbError> for ServerError {
    fn from(e: TsdbError) -> Self {
        ServerError::Config(e)
    }
}

/// Cumulative ingest-side counters across every connection the server
/// has served, live connections included (their contribution comes from
/// the last published [`StreamProgress`], so totals trail the sockets
/// slightly until connections close).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestTotals {
    /// Ingest connections accepted (live + closed).
    pub connections: u64,
    /// Connections refused at the [`ServerConfig::max_ingest_connections`] cap.
    pub rejected_connections: u64,
    /// Lines consumed.
    pub lines: usize,
    /// Points written into the store.
    pub points: usize,
    /// Out-of-order points repaired by the reorder stages.
    pub reordered: usize,
    /// Points dropped as later than the configured lateness.
    pub dropped_late: usize,
    /// Points dropped as duplicate timestamps.
    pub dropped_duplicate: usize,
    /// Malformed lines skipped.
    pub parse_failures: usize,
    /// Writes the engine rejected.
    pub write_failures: usize,
    /// Chunks currently in flight across live connections (gauge).
    pub in_flight_chunks: usize,
    /// Points currently pending in reorder stages across live
    /// connections (gauge).
    pub pending_reorder: usize,
}

impl IngestTotals {
    fn add_report(&mut self, report: &IngestReport) {
        self.lines += report.lines;
        self.points += report.points;
        self.reordered += report.reordered;
        self.dropped_late += report.dropped_late;
        self.dropped_duplicate += report.dropped_duplicate;
        self.parse_failures += report.parse_failures.len();
        self.write_failures += report.write_failures.len();
    }

    fn add_progress(&mut self, progress: &StreamProgress) {
        self.lines += progress.lines;
        self.points += progress.points;
        self.reordered += progress.reordered;
        self.dropped_late += progress.dropped_late;
        self.dropped_duplicate += progress.dropped_duplicate;
        self.parse_failures += progress.parse_failures;
        self.write_failures += progress.write_failures;
        self.in_flight_chunks += progress.in_flight_chunks;
        self.pending_reorder += progress.pending_reorder;
    }
}

/// Cumulative background-compaction counters, surfaced through `STATS`
/// and the final [`ServerReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Completed compaction passes.
    pub runs: u64,
    /// Ticks skipped because no logical `now` was available (empty
    /// store under [`CompactionClock::DataWatermark`]).
    pub skipped: u64,
    /// Failed passes.
    pub errors: u64,
    /// Rollup points materialized across all runs.
    pub rolled_up: usize,
    /// Raw points evicted across all runs.
    pub raw_evicted: usize,
    /// Rollup points evicted across all runs.
    pub rollup_evicted: usize,
    /// Rendering of the most recent failure — cleared when a later pass
    /// succeeds, so a populated value always means the *latest* pass
    /// failed, not that some pass once did.
    pub last_error: Option<String>,
}

impl CompactionStats {
    pub(crate) fn record_success(&mut self, report: &CompactionReport) {
        self.runs += 1;
        self.rolled_up += report.rolled_up;
        self.raw_evicted += report.raw_evicted;
        self.rollup_evicted += report.rollup_evicted;
        self.last_error = None;
    }

    pub(crate) fn record_failure(&mut self, error: String) {
        self.errors += 1;
        self.last_error = Some(error);
    }
}

/// Cumulative background-checkpoint counters, surfaced through `STATS`
/// (`checkpoint.*`) and the final [`ServerReport`]. Scheduler ticks,
/// client `SNAPSHOT` commands, and the drain-time final checkpoint all
/// fold into the same counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Completed checkpoint passes.
    pub runs: u64,
    /// Failed passes.
    pub errors: u64,
    /// Wall-clock milliseconds the most recent successful pass took.
    pub last_duration_ms: u64,
    /// Links in the chain after the most recent pass (base + deltas).
    pub chain_links: usize,
    /// Passes that re-based (wrote a fresh full base and dropped the
    /// old chain) rather than appending a delta.
    pub rebases: u64,
    /// Link-file bytes written across all passes.
    pub bytes_written: u64,
    /// WAL files removed by covered-generation discards across all
    /// passes.
    pub wal_files_discarded: u64,
    /// Rendering of the most recent failure — cleared when a later pass
    /// succeeds, matching [`CompactionStats::last_error`].
    pub last_error: Option<String>,
}

impl CheckpointStats {
    fn record_success(&mut self, report: &ChainCheckpointReport, duration: Duration) {
        self.runs += 1;
        self.last_duration_ms = u64::try_from(duration.as_millis()).unwrap_or(u64::MAX);
        self.chain_links = report.links;
        if report.rebased {
            self.rebases += 1;
        }
        self.bytes_written += report.bytes_written;
        self.wal_files_discarded += report.wal_files_discarded as u64;
        self.last_error = None;
    }

    fn record_failure(&mut self, error: String) {
        self.errors += 1;
        self.last_error = Some(error);
    }
}

/// Final accounting handed back by [`Server::shutdown`] / [`Server::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// Ingest totals at shutdown (all connections drained, so the live
    /// gauges are zero and counts are exact).
    pub ingest: IngestTotals,
    /// Compaction totals at shutdown.
    pub compaction: CompactionStats,
    /// Checkpoint totals at shutdown, the drain-time final checkpoint
    /// included (zeroes when no chain was configured).
    pub checkpoint: CheckpointStats,
    /// Rendering of the final-snapshot failure, if one was requested
    /// and failed (the drain still completes).
    pub final_snapshot_error: Option<String>,
    /// Rendering of the drain-time WAL seal failure, if a WAL was
    /// configured and the final flush+fsync failed.
    pub wal_seal_error: Option<String>,
    /// Connections refused at the [`ServerConfig::max_query_connections`]
    /// cap (ingest-port refusals are in
    /// [`IngestTotals::rejected_connections`]).
    pub query_rejected_connections: u64,
}

/// Pre-resolved handles into the server's metrics registry for every
/// hot-path observation site — resolved once at startup so instrumented
/// paths pay atomic adds, never name lookups.
pub(crate) struct ServerMetrics {
    /// Request-line parse time, all verbs (`query.parse_micros`).
    pub query_parse: Histogram,
    /// Per-verb execute time (`query.<verb>.execute_micros`), rendering
    /// excluded for the verbs that track it separately.
    range_execute: Histogram,
    smooth_execute: Histogram,
    stats_execute: Histogram,
    metrics_execute: Histogram,
    health_execute: Histogram,
    snapshot_execute: Histogram,
    subscribe_execute: Histogram,
    unsubscribe_execute: Histogram,
    shutdown_execute: Histogram,
    /// Response-rendering time of the row-bearing verbs
    /// (`query.<verb>.render_micros`).
    pub range_render: Histogram,
    pub smooth_render: Histogram,
    /// Requests that crossed [`ServerConfig::slow_query`]
    /// (`query.slow_total`).
    pub slow_queries: Counter,
    /// Event-core worker sweeps that made progress (`event.sweeps`) and
    /// idle parks on the inbox (`event.parks`).
    pub event_sweeps: Counter,
    pub event_parks: Counter,
    /// Background pass durations (`compaction.run_micros`,
    /// `checkpoint.run_micros`).
    pub compaction_run: Histogram,
    pub checkpoint_run: Histogram,
    /// Completed self-scrape passes (`scrape.runs`).
    pub scrape_runs: Counter,
}

impl ServerMetrics {
    fn new(registry: &ObsRegistry) -> Self {
        Self {
            query_parse: registry.histogram("query.parse_micros"),
            range_execute: registry.histogram("query.range.execute_micros"),
            smooth_execute: registry.histogram("query.smooth.execute_micros"),
            stats_execute: registry.histogram("query.stats.execute_micros"),
            metrics_execute: registry.histogram("query.metrics.execute_micros"),
            health_execute: registry.histogram("query.health.execute_micros"),
            snapshot_execute: registry.histogram("query.snapshot.execute_micros"),
            subscribe_execute: registry.histogram("query.subscribe.execute_micros"),
            unsubscribe_execute: registry.histogram("query.unsubscribe.execute_micros"),
            shutdown_execute: registry.histogram("query.shutdown.execute_micros"),
            range_render: registry.histogram("query.range.render_micros"),
            smooth_render: registry.histogram("query.smooth.render_micros"),
            slow_queries: registry.counter("query.slow_total"),
            event_sweeps: registry.counter("event.sweeps"),
            event_parks: registry.counter("event.parks"),
            compaction_run: registry.histogram("compaction.run_micros"),
            checkpoint_run: registry.histogram("checkpoint.run_micros"),
            scrape_runs: registry.counter("scrape.runs"),
        }
    }

    /// The execute-time histogram of `command`'s verb.
    fn execute_hist(&self, command: &Command) -> &Histogram {
        match command {
            Command::Range { .. } => &self.range_execute,
            Command::Smooth { .. } => &self.smooth_execute,
            Command::Stats => &self.stats_execute,
            Command::Metrics => &self.metrics_execute,
            Command::Health => &self.health_execute,
            Command::Snapshot { .. } => &self.snapshot_execute,
            Command::Subscribe { .. } => &self.subscribe_execute,
            Command::Unsubscribe { .. } => &self.unsubscribe_execute,
            Command::Shutdown => &self.shutdown_execute,
        }
    }
}

/// The verb token of a parsed command, for slow-query log lines.
fn verb_name(command: &Command) -> &'static str {
    match command {
        Command::Range { .. } => "RANGE",
        Command::Smooth { .. } => "SMOOTH",
        Command::Stats => "STATS",
        Command::Metrics => "METRICS",
        Command::Health => "HEALTH",
        Command::Snapshot { .. } => "SNAPSHOT",
        Command::Subscribe { .. } => "SUBSCRIBE",
        Command::Unsubscribe { .. } => "UNSUBSCRIBE",
        Command::Shutdown => "SHUTDOWN",
    }
}

#[derive(Default)]
struct Lifecycle {
    /// A `SHUTDOWN` command (or [`Server::shutdown`]) asked for a
    /// graceful stop; [`Server::run`] waits on this.
    shutdown_requested: bool,
    /// The drain has started: accept loops exit, connection threads
    /// finish their streams, the scheduler stops.
    draining: bool,
}

/// State shared by the accept loops, connection threads, the scheduler,
/// and the [`Server`] handle.
pub(crate) struct Shared {
    db: ShardedDb,
    config: ServerConfig,
    draining: AtomicBool,
    lifecycle: Mutex<Lifecycle>,
    lifecycle_cv: Condvar,
    /// Held for the duration of every snapshot save; the scheduler
    /// acquires it per pass, so compaction pauses while a snapshot is
    /// being written (and vice versa).
    snapshot_gate: Mutex<()>,
    live: Mutex<HashMap<u64, Arc<Mutex<StreamProgress>>>>,
    finished: Mutex<IngestTotals>,
    active: AtomicUsize,
    query_active: AtomicUsize,
    /// Query-port connections refused at the cap (the ingest-port
    /// counterpart lives in `finished.rejected_connections`).
    query_rejected: AtomicU64,
    next_conn_id: AtomicU64,
    compaction: Mutex<CompactionStats>,
    checkpoint: Mutex<CheckpointStats>,
    /// The incremental checkpoint chain, when configured. The lock
    /// serializes checkpoint passes (scheduler ticks, `SNAPSHOT`
    /// commands, the drain); the snapshot gate additionally keeps them
    /// exclusive with compaction and plain snapshot saves.
    chain: Option<Mutex<CheckpointChain>>,
    /// Live WAL appender, shared with every ingest pipeline.
    wal: Option<Wal>,
    /// What boot-time replay recovered (zeroes when no WAL or nothing
    /// to replay) — surfaced in `STATS`.
    wal_replay: WalReplayReport,
    /// Standing `SUBSCRIBE` registrations, fed by every ingest
    /// pipeline's apply hook.
    subscriptions: Arc<Registry>,
    /// This server's metrics registry — per instance, not global, so
    /// parallel servers in one process never cross-contaminate.
    registry: ObsRegistry,
    /// Pre-resolved handles into `registry` for the server's own
    /// observation sites.
    metrics: ServerMetrics,
    /// Pre-resolved ingest-stage histograms every pipeline shares.
    ingest_metrics: IngestMetrics,
}

impl Shared {
    fn new(
        db: ShardedDb,
        config: ServerConfig,
        wal: Option<Wal>,
        wal_replay: WalReplayReport,
        chain: Option<CheckpointChain>,
    ) -> Self {
        let subscriptions = Arc::new(Registry::new(
            config.subscribe_window,
            config.subscribe_resolution,
            config.subscribe_every,
            config.max_subscriptions,
        ));
        let registry = ObsRegistry::new();
        let metrics = ServerMetrics::new(&registry);
        let ingest_metrics = IngestMetrics::new(&registry);
        if let Some(wal) = &wal {
            wal.set_metrics(WalMetrics::new(&registry));
        }
        Self {
            db,
            config,
            draining: AtomicBool::new(false),
            lifecycle: Mutex::new(Lifecycle::default()),
            lifecycle_cv: Condvar::new(),
            snapshot_gate: Mutex::new(()),
            live: Mutex::new(HashMap::new()),
            finished: Mutex::new(IngestTotals::default()),
            active: AtomicUsize::new(0),
            query_active: AtomicUsize::new(0),
            query_rejected: AtomicU64::new(0),
            next_conn_id: AtomicU64::new(0),
            compaction: Mutex::new(CompactionStats::default()),
            checkpoint: Mutex::new(CheckpointStats::default()),
            chain: chain.map(Mutex::new),
            wal,
            wal_replay,
            subscriptions,
            registry,
            metrics,
            ingest_metrics,
        }
    }

    pub(crate) fn db(&self) -> &ShardedDb {
        &self.db
    }

    pub(crate) fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A clone of the live WAL appender (shared with every ingest
    /// pipeline), or `None` without durability.
    pub(crate) fn wal_handle(&self) -> Option<Wal> {
        self.wal.clone()
    }

    /// The subscription registry (for per-connection [`SubSession`]s).
    pub(crate) fn subscriptions(&self) -> &Arc<Registry> {
        &self.subscriptions
    }

    /// The post-reorder apply hook every ingest pipeline installs: each
    /// applied point fans out to matching subscriptions. With no
    /// standing subscriptions the hook is one atomic load per point.
    pub(crate) fn subscription_hook(&self) -> ApplyHook {
        let registry = Arc::clone(&self.subscriptions);
        ApplyHook::new(move |key, point| registry.on_point(key, point.value))
    }

    /// The server's observation handles.
    pub(crate) fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The fully wired [`IngestConfig`] every ingest pipeline runs with:
    /// the configured base plus the WAL handle, the subscription fanout
    /// hook, and the shared stage histograms. Both cores and the
    /// self-scrape path build pipelines from this one place.
    pub(crate) fn pipeline_config(&self) -> IngestConfig {
        IngestConfig {
            wal: self.wal_handle(),
            apply_hook: Some(self.subscription_hook()),
            metrics: Some(self.ingest_metrics.clone()),
            ..self.config.ingest.clone()
        }
    }

    /// One self-scrape pass: render the full metrics state (live
    /// sources + registry) as line protocol tagged [`SELF_TAG`] at
    /// `ts`, ingest it through the normal pipeline (WAL, checkpoints,
    /// and subscriptions all apply), and return the ingested document —
    /// the oracle the round-trip tests compare query results against.
    pub(crate) fn scrape(&self, ts: i64) -> Result<String, String> {
        let doc = obs::render_line_protocol(&collect_metrics(self), SELF_TAG, ts);
        match pipeline_ingest(&self.db, &doc, ts, &self.pipeline_config()) {
            Ok(report) if report.parse_failures.is_empty() && report.write_failures.is_empty() => {
                self.metrics.scrape_runs.inc();
                Ok(doc)
            }
            Ok(report) => Err(format!("scrape ingest rejected lines: {report}")),
            Err(e) => Err(e.to_string()),
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn verbose(&self) -> bool {
        self.config.verbose
    }

    /// Holds the gate that keeps snapshot saves and compaction passes
    /// mutually exclusive.
    pub(crate) fn snapshot_gate(&self) -> std::sync::MutexGuard<'_, ()> {
        self.snapshot_gate
            .lock()
            .expect("snapshot gate poisoned")
    }

    pub(crate) fn record_compaction<F: FnOnce(&mut CompactionStats)>(&self, update: F) {
        update(&mut self.compaction.lock().expect("compaction stats poisoned"));
    }

    /// Whether an incremental checkpoint chain is configured.
    pub(crate) fn has_chain(&self) -> bool {
        self.chain.is_some()
    }

    /// Runs one incremental checkpoint pass on the configured chain —
    /// rotate the WAL, write the delta (or re-base), commit the
    /// manifest, discard the covered generations — folding the outcome
    /// into the `checkpoint.*` stats. The caller must hold the snapshot
    /// gate; the chain's own lock serializes concurrent callers.
    pub(crate) fn run_checkpoint(&self) -> Result<ChainCheckpointReport, String> {
        let Some(chain) = &self.chain else {
            return Err("no checkpoint chain is configured".to_owned());
        };
        let started = Instant::now();
        let mut chain = chain.lock().expect("checkpoint chain poisoned");
        match chain.checkpoint(&self.db, self.wal.as_ref()) {
            Ok(report) => {
                let elapsed = started.elapsed();
                self.metrics.checkpoint_run.observe_duration(elapsed);
                self.checkpoint
                    .lock()
                    .expect("checkpoint stats poisoned")
                    .record_success(&report, elapsed);
                Ok(report)
            }
            Err(e) => {
                let rendered = e.to_string();
                self.checkpoint
                    .lock()
                    .expect("checkpoint stats poisoned")
                    .record_failure(rendered.clone());
                Err(rendered)
            }
        }
    }

    pub(crate) fn request_shutdown(&self) {
        let mut guard = self.lifecycle.lock().expect("lifecycle poisoned");
        guard.shutdown_requested = true;
        self.lifecycle_cv.notify_all();
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        let mut guard = self.lifecycle.lock().expect("lifecycle poisoned");
        guard.shutdown_requested = true;
        guard.draining = true;
        self.lifecycle_cv.notify_all();
    }

    fn wait_shutdown_requested(&self) {
        let mut guard = self.lifecycle.lock().expect("lifecycle poisoned");
        while !guard.shutdown_requested {
            guard = self
                .lifecycle_cv
                .wait(guard)
                .expect("lifecycle poisoned");
        }
    }

    /// Sleeps up to `timeout`, returning `true` early if the drain
    /// started — the scheduler's interruptible tick wait.
    pub(crate) fn wait_drain_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.lifecycle.lock().expect("lifecycle poisoned");
        while !guard.draining {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                return false;
            };
            guard = self
                .lifecycle_cv
                .wait_timeout(guard, remaining)
                .expect("lifecycle poisoned")
                .0;
        }
        true
    }

    pub(crate) fn register_connection(&self) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::AcqRel);
        self.live
            .lock()
            .expect("live registry poisoned")
            .insert(id, Arc::new(Mutex::new(StreamProgress::default())));
        self.finished
            .lock()
            .expect("ingest totals poisoned")
            .connections += 1;
        id
    }

    pub(crate) fn publish_progress(&self, id: u64, progress: StreamProgress) {
        if let Some(slot) = self.live.lock().expect("live registry poisoned").get(&id) {
            *slot.lock().expect("progress slot poisoned") = progress;
        }
    }

    pub(crate) fn finish_connection(&self, id: u64, report: &IngestReport) {
        // Take both locks in registry order (live, then finished) so the
        // connection moves atomically from the live sum to the totals —
        // aggregate counters never double-count it.
        let mut live = self.live.lock().expect("live registry poisoned");
        let mut finished = self.finished.lock().expect("ingest totals poisoned");
        live.remove(&id);
        finished.add_report(report);
    }

    /// Records an over-cap refusal — on either port, each with its own
    /// counter (`STATS` must not undercount query-port refusals).
    pub(crate) fn reject_connection(&self, port: Port) {
        match port {
            Port::Ingest => {
                self.finished
                    .lock()
                    .expect("ingest totals poisoned")
                    .rejected_connections += 1;
            }
            Port::Query => {
                self.query_rejected.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Claims one slot under `port`'s connection cap, or `None` when
    /// the cap is reached. The returned guard releases the slot on
    /// drop, however the connection ends.
    pub(crate) fn try_acquire_slot(self: &Arc<Self>, port: Port) -> Option<ActiveGuard> {
        let cap = port.cap(&self.config);
        let prev = port.counter(self).fetch_add(1, Ordering::AcqRel);
        if prev >= cap {
            port.counter(self).fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(ActiveGuard(Arc::clone(self), port))
    }

    /// The aggregate ingest counters: closed-connection totals plus the
    /// latest published progress of every live connection.
    fn ingest_totals(&self) -> IngestTotals {
        let live = self.live.lock().expect("live registry poisoned");
        let mut totals = *self.finished.lock().expect("ingest totals poisoned");
        for slot in live.values() {
            totals.add_progress(&slot.lock().expect("progress slot poisoned"));
        }
        totals
    }
}

/// Which per-listener connection counter a connection holds a slot in.
#[derive(Clone, Copy)]
pub(crate) enum Port {
    /// The ingest listener.
    Ingest,
    /// The query/ops listener.
    Query,
}

impl Port {
    fn counter(self, shared: &Shared) -> &AtomicUsize {
        match self {
            Port::Ingest => &shared.active,
            Port::Query => &shared.query_active,
        }
    }

    /// The configured connection cap of this port.
    pub(crate) fn cap(self, config: &ServerConfig) -> usize {
        match self {
            Port::Ingest => config.max_ingest_connections,
            Port::Query => config.max_query_connections,
        }
    }
}

/// Decrements a listener's active-connection count when the owning
/// connection ends, however it ends. Obtained through
/// [`Shared::try_acquire_slot`] only.
pub(crate) struct ActiveGuard(Arc<Shared>, Port);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.1.counter(&self.0).fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running ASAP server: two TCP listeners plus the optional compaction
/// scheduler over one shared [`ShardedDb`].
///
/// The handle owns the lifecycle: [`Server::shutdown`] (or a client's
/// `SHUTDOWN` command followed by [`Server::run`] returning) drains
/// everything gracefully. The store itself is shared — clone the
/// `ShardedDb` before [`Server::start`] to keep querying it after the
/// server is gone.
pub struct Server {
    shared: Arc<Shared>,
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    /// The serving threads of the selected core: accept loops
    /// (threaded) or dispatcher + workers (event).
    io_threads: Vec<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
    checkpoint_thread: Option<JoinHandle<()>>,
    scrape_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds both listeners, spawns the accept loops and (if configured)
    /// the compaction scheduler, and returns the running server.
    ///
    /// Fails fast on configuration errors ([`ServerError::Config`]) and
    /// socket errors ([`ServerError::Io`]); nothing is spawned on
    /// failure.
    pub fn start(db: ShardedDb, config: ServerConfig) -> Result<Self, ServerError> {
        config.ingest.validate()?;
        if config.max_ingest_connections == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "max_ingest_connections",
                message: "the ingest connection cap must be positive",
            }
            .into());
        }
        if config.max_query_connections == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "max_query_connections",
                message: "the query connection cap must be positive",
            }
            .into());
        }
        if config.poll_interval.is_zero() {
            return Err(TsdbError::InvalidParameter {
                name: "poll_interval",
                message: "the shutdown poll interval must be positive",
            }
            .into());
        }
        if config.event_workers == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "event_workers",
                message: "the event core needs at least one worker",
            }
            .into());
        }
        if config.read_budget == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "read_budget",
                message: "the per-tick read budget must be positive",
            }
            .into());
        }
        if config.write_deadline.is_zero() {
            // Also required by `set_write_timeout`, which rejects zero.
            return Err(TsdbError::InvalidParameter {
                name: "write_deadline",
                message: "the write deadline must be positive",
            }
            .into());
        }
        if config.subscribe_every == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "subscribe_every",
                message: "the default subscription refresh interval must be positive",
            }
            .into());
        }
        if config.max_subscriptions == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "max_subscriptions",
                message: "the subscription cap must be positive",
            }
            .into());
        }
        if config.slow_query.is_some_and(|d| d.is_zero()) {
            return Err(TsdbError::InvalidParameter {
                name: "slow_query",
                message: "the slow-query threshold must be positive (or unset)",
            }
            .into());
        }
        if config.self_scrape.is_some_and(|d| d.is_zero()) {
            return Err(TsdbError::InvalidParameter {
                name: "self_scrape",
                message: "the self-scrape interval must be positive (or unset)",
            }
            .into());
        }
        // Replicate StreamingAsap::new's viability assertions: a template
        // the operator would panic on must be a startup error, not a
        // panic on the first SUBSCRIBE.
        if config.subscribe_window == 0 || config.subscribe_resolution == 0 {
            return Err(TsdbError::InvalidParameter {
                name: "subscribe_window",
                message: "the subscription window and resolution must be positive",
            }
            .into());
        }
        let template = asap_core::StreamingConfig::new(
            config.subscribe_window,
            config.subscribe_resolution,
            config.subscribe_every,
        );
        let panes = config.subscribe_window.div_ceil(template.pane_size()).max(2);
        if panes < asap_core::MIN_WARM_PANES {
            return Err(TsdbError::InvalidParameter {
                name: "subscribe_resolution",
                message: "the subscription window must cover at least 4 panes; \
                          raise subscribe_window or subscribe_resolution",
            }
            .into());
        }
        if let Some(compaction) = &config.compaction {
            compaction.policy.validate()?;
            compaction.schedule.validate()?;
        }
        if let Some(checkpoint) = &config.checkpoint {
            checkpoint.schedule.validate()?;
            if checkpoint.chain_depth == 0 {
                return Err(TsdbError::InvalidParameter {
                    name: "chain_depth",
                    message: "the checkpoint chain depth must be at least 1",
                }
                .into());
            }
        }
        // Recover, then open: replay any WAL left by a prior run into
        // the store before the listeners exist (no ingest races replay),
        // then start a fresh log generation for this run's appends. The
        // caller pre-loads the matching snapshot into `db`, so replay
        // only adds the tail (snapshot overlap is skipped).
        let mut wal = None;
        let mut wal_replay = WalReplayReport::default();
        if let Some(wal_config) = &config.wal {
            wal_replay = asap_tsdb::wal::replay(&wal_config.dir, &db)?;
            wal = Some(Wal::open(
                &wal_config.dir,
                db.shard_count(),
                wal_config.fsync,
            )?);
        }
        // Open (or create) the checkpoint chain after replay: the chain
        // writer's first pass after open always re-bases, so it never
        // depends on in-memory state from a prior process.
        let mut chain = None;
        if let Some(checkpoint_config) = &config.checkpoint {
            chain = Some(
                CheckpointChain::open(&checkpoint_config.dir, checkpoint_config.chain_depth)
                    .map_err(|e| match e {
                        SnapshotError::Io(e) => ServerError::Io(e),
                        SnapshotError::Tsdb(e) => ServerError::Config(e),
                    })?,
            );
        }
        let ingest_listener = TcpListener::bind(&config.ingest_addr)?;
        let query_listener = TcpListener::bind(&config.query_addr)?;
        // Nonblocking accept, polled at the drain granularity: the
        // accept loops must never park inside `accept()`, where only a
        // successful inbound connection could wake them — a drain that
        // relied on such a nudge would hang at join if the nudge
        // connect failed (e.g. fd exhaustion at shutdown time).
        ingest_listener.set_nonblocking(true)?;
        query_listener.set_nonblocking(true)?;
        let ingest_addr = ingest_listener.local_addr()?;
        let query_addr = query_listener.local_addr()?;
        let compaction = config.compaction.clone();
        let checkpoint_config = config.checkpoint.clone();
        let self_scrape = config.self_scrape;
        let core = config.core;
        let shared = Arc::new(Shared::new(db, config, wal, wal_replay, chain));

        let io_threads = match core {
            CoreMode::Event => event::start(ingest_listener, query_listener, &shared),
            CoreMode::Threaded => threaded::start(ingest_listener, query_listener, &shared),
        };
        let scheduler_thread = compaction.map(|cfg| {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || scheduler::run(&s, &cfg))
        });
        let checkpoint_thread = checkpoint_config.map(|cfg| {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || checkpoint::run(&s, &cfg))
        });
        let scrape_thread = self_scrape.map(|interval| {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || scrape_loop(&s, interval))
        });

        Ok(Self {
            shared,
            ingest_addr,
            query_addr,
            io_threads,
            scheduler_thread,
            checkpoint_thread,
            scrape_thread,
        })
    }

    /// Runs one self-scrape pass immediately — the full metrics state
    /// rendered as [`asap_tsdb::SELF_TAG`]-tagged line protocol and
    /// ingested through the normal pipeline — and returns the ingested
    /// document. Works with or without a configured
    /// [`ServerConfig::self_scrape`] interval; the round-trip tests use
    /// the returned document as their oracle.
    pub fn scrape_now(&self) -> Result<String, String> {
        self.shared.scrape(unix_millis())
    }

    /// The bound address of the ingest listener (resolves `:0` binds).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound address of the query/ops listener.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// The served store (cheap clone; shares storage with the server).
    pub fn db(&self) -> ShardedDb {
        self.shared.db.clone()
    }

    /// Current aggregate ingest counters (what `STATS` reports).
    pub fn ingest_totals(&self) -> IngestTotals {
        self.shared.ingest_totals()
    }

    /// What boot-time WAL replay recovered (zeroes when no WAL was
    /// configured or the log directory was empty).
    pub fn wal_replay_report(&self) -> WalReplayReport {
        self.shared.wal_replay
    }

    /// Current compaction counters (what `STATS` reports).
    pub fn compaction_stats(&self) -> CompactionStats {
        self.shared
            .compaction
            .lock()
            .expect("compaction stats poisoned")
            .clone()
    }

    /// Current checkpoint counters (what `STATS` reports; zeroes when
    /// no chain is configured).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.shared
            .checkpoint
            .lock()
            .expect("checkpoint stats poisoned")
            .clone()
    }

    /// Blocks until a client issues `SHUTDOWN` (or another thread calls
    /// [`Server::shutdown`] via a clone of the handle — there is none,
    /// so in practice: until `SHUTDOWN` arrives), then drains and
    /// returns the final report. This is the serve loop of the
    /// `asap-server` binary.
    pub fn run(self) -> ServerReport {
        self.shared.wait_shutdown_requested();
        self.drain()
    }

    /// Gracefully stops the server now: stops accepting, lets every
    /// ingest connection flush its reorder buffers via `finish()`, stops
    /// the compaction scheduler, writes the final snapshot if
    /// configured, and returns the final report.
    pub fn shutdown(self) -> ServerReport {
        self.drain()
    }

    fn drain(mut self) -> ServerReport {
        // Ordering: (1) raise the drain flag — within one poll tick the
        // event workers finalize their connections (abort + flush
        // reorder buffers) and the threaded handlers finish their
        // streams, while accept paths stop taking new sockets; (2) join
        // the core's I/O threads (the threaded accept loops join every
        // handler; event workers exit after finalizing); (3) the
        // scheduler observed the flag via the condvar — join it; (4) with
        // all writers drained and the compactor stopped, write the final
        // snapshot; (5) assemble the report (gauges now zero).
        self.shared.begin_drain();
        for handle in self.io_threads.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.checkpoint_thread.take() {
            let _ = handle.join();
        }
        // Join the self-scrape thread before the final checkpoint and
        // the WAL seal: its drain-time final scrape must land inside
        // both, so the last thing a restarted server recovers includes
        // the dying server's own telemetry.
        if let Some(handle) = self.scrape_thread.take() {
            let _ = handle.join();
        }
        // A chain-configured server's durable shutdown state is one
        // last incremental checkpoint: everything the drain flushed
        // lands in the chain and the covered log generations go away,
        // so the next boot folds the chain plus an empty (or tiny) WAL
        // tail. Failures land in `checkpoint.last_error` — the drain
        // still completes, and the surviving WAL still covers the data.
        if self.shared.has_chain() {
            let _gate = self.shared.snapshot_gate();
            let _ = self.shared.run_checkpoint();
        }
        let mut final_snapshot_error = None;
        if let Some(path) = self.shared.config.final_snapshot.clone() {
            let _gate = self.shared.snapshot_gate();
            let saved = match &self.shared.wal {
                // With a WAL, the final snapshot is a checkpoint:
                // rotate → save → discard the covered generations, so
                // the snapshot plus the surviving log tail stays a
                // complete recovery set whatever step a crash hits.
                Some(wal) => checkpoint_sharded(&self.shared.db, &path, wal).map(|_| ()),
                None => self.shared.db.save(&path),
            };
            if let Err(e) = saved {
                final_snapshot_error = Some(e.to_string());
            }
        }
        // Seal the log last (flush + fsync every shard): whatever the
        // snapshot outcome, everything ingested this run is on disk.
        let mut wal_seal_error = None;
        if let Some(wal) = &self.shared.wal {
            if let Err(e) = wal.seal() {
                wal_seal_error = Some(e.to_string());
            }
        }
        ServerReport {
            ingest: self.shared.ingest_totals(),
            compaction: self
                .shared
                .compaction
                .lock()
                .expect("compaction stats poisoned")
                .clone(),
            checkpoint: self
                .shared
                .checkpoint
                .lock()
                .expect("checkpoint stats poisoned")
                .clone(),
            final_snapshot_error,
            wal_seal_error,
            query_rejected_connections: self.shared.query_rejected.load(Ordering::Acquire),
        }
    }
}

/// Milliseconds since the Unix epoch — the timestamp base of
/// self-scrape samples.
fn unix_millis() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .and_then(|d| i64::try_from(d.as_millis()).ok())
        .unwrap_or(0)
}

/// The self-scrape thread body: one pass per configured interval, plus
/// one final pass when the drain begins so the shutdown state of the
/// registry is durable (the drain joins this thread before the final
/// checkpoint and WAL seal).
fn scrape_loop(shared: &Shared, interval: Duration) {
    loop {
        let draining = shared.wait_drain_timeout(interval);
        if let Err(e) = shared.scrape(unix_millis()) {
            obs::warn("scrape", "scrape_failed", &[("error", &e)]);
        }
        if draining {
            return;
        }
    }
}

/// Longest accepted request line on the query port. Remote input must
/// not grow server memory: a client that streams bytes without ever
/// sending a newline gets one `ERR` and is disconnected.
pub(crate) const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Largest bucketed grid a remote query may materialize. The engine
/// allocates one slot per grid bucket, so client-chosen
/// `(start, end, bucket)` must not size server memory — a span/bucket
/// ratio past this cap is refused before it reaches storage.
const MAX_GRID_BUCKETS: u64 = 1 << 20;

/// Rejects bucketed ranges whose grid the server is unwilling to
/// allocate. Shape errors the engine already reports (non-positive
/// bucket, inverted or overflowing range) pass through to keep error
/// semantics identical to the in-process API.
fn check_grid(start: i64, end: i64, bucket: i64) -> Result<(), String> {
    if bucket <= 0 {
        return Ok(()); // the engine rejects this with its own message
    }
    if let Some(span) = end.checked_sub(start).filter(|s| *s > 0) {
        let buckets = (span as u64).div_ceil(bucket as u64);
        if buckets > MAX_GRID_BUCKETS {
            return Err(format!(
                "grid of {buckets} buckets exceeds the server cap of {MAX_GRID_BUCKETS}; \
                 widen the bucket or narrow the range"
            ));
        }
    }
    Ok(())
}

/// Resolves a client-supplied `SNAPSHOT` target against the configured
/// snapshot directory. Remote input must never choose arbitrary server
/// filesystem paths: the command is refused outright when no directory
/// is configured, and the name must be relative with plain components
/// only (no `..`, no root) so the resolved path cannot escape the
/// directory.
fn resolve_snapshot_path(dir: Option<&Path>, name: &str) -> Result<PathBuf, String> {
    let Some(dir) = dir else {
        return Err(
            "SNAPSHOT is disabled: the server was started without a snapshot directory \
             (--snapshot-dir)"
                .to_owned(),
        );
    };
    let requested = Path::new(name);
    let escapes = requested.is_absolute()
        || requested
            .components()
            .any(|c| !matches!(c, std::path::Component::Normal(_)));
    if escapes {
        return Err(format!(
            "snapshot target `{name}` must be a relative path inside the snapshot \
             directory (no absolute paths, no `..`)"
        ));
    }
    Ok(dir.join(requested))
}

/// Executes one request line; returns the response and whether the
/// server should begin shutting down after it is sent. Shared by both
/// cores — responses must be byte-identical whichever serves them.
/// `session` is the connection's subscription state: `SUBSCRIBE` /
/// `UNSUBSCRIBE` mutate it, everything else ignores it.
///
/// Every request is phase-timed into the metrics registry: parse time
/// into `query.parse_micros`, per-verb execute time (rendering
/// excluded) into `query.<verb>.execute_micros`, and `RANGE`/`SMOOTH`
/// rendering into `query.<verb>.render_micros`. A request whose total
/// crosses [`ServerConfig::slow_query`] is logged as one structured
/// `slow_query` warning.
pub(crate) fn execute(line: &str, shared: &Shared, session: &mut SubSession) -> (String, bool) {
    let started = Instant::now();
    let command = match protocol::parse_command(line) {
        Ok(command) => command,
        Err(e) => return (protocol::render_error(&e), false),
    };
    let metrics = shared.metrics();
    let parse = started.elapsed();
    metrics.query_parse.observe_duration(parse);
    let verb = verb_name(&command);
    let execute_hist = metrics.execute_hist(&command);
    let arm_started = Instant::now();
    let (response, shutdown_after, rows, render) = dispatch(command, shared, session);
    let exec = arm_started.elapsed().saturating_sub(render);
    execute_hist.observe_duration(exec);
    if let Some(threshold) = shared.config.slow_query {
        let total = started.elapsed();
        if total >= threshold {
            metrics.slow_queries.inc();
            let request: String = line.chars().take(200).collect();
            obs::warn(
                "server",
                "slow_query",
                &[
                    ("verb", &verb),
                    ("request", &request),
                    ("total_micros", &u64_micros(total)),
                    ("parse_micros", &u64_micros(parse)),
                    ("execute_micros", &u64_micros(exec)),
                    ("render_micros", &u64_micros(render)),
                    ("rows", &rows),
                ],
            );
        }
    }
    (response, shutdown_after)
}

fn u64_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The per-verb body of [`execute`]: returns the response, the
/// shutdown flag, the result-row count (points / frames — 0 for
/// non-row verbs), and the time spent rendering the response (already
/// observed into the verb's render histogram; [`execute`] subtracts it
/// from the execute timing).
fn dispatch(
    command: Command,
    shared: &Shared,
    session: &mut SubSession,
) -> (String, bool, usize, Duration) {
    let fail = |e: String| (protocol::render_error(&e), false, 0, Duration::ZERO);
    match command {
        Command::Range {
            selector,
            start,
            end,
            bucket,
            aggregator,
        } => {
            let selector = confine_internal(selector);
            let query = match bucket {
                None => RangeQuery::raw(start, end),
                Some(b) => {
                    if let Err(e) = check_grid(start, end, b) {
                        return fail(e);
                    }
                    RangeQuery::bucketed(start, end, b).aggregate(aggregator)
                }
            };
            match shared.db.query_selector(&selector, query) {
                Ok(results) => {
                    let rows = results.iter().map(|(_, points)| points.len()).sum();
                    let render_started = Instant::now();
                    let response = protocol::render_range(&results);
                    let render = render_started.elapsed();
                    shared.metrics.range_render.observe_duration(render);
                    (response, false, rows, render)
                }
                Err(e) => fail(e.to_string()),
            }
        }
        Command::Smooth {
            selector,
            start,
            end,
            bucket,
            resolution,
        } => {
            if resolution == 0 {
                return fail("resolution must be positive".to_owned());
            }
            if let Err(e) = check_grid(start, end, bucket) {
                return fail(e);
            }
            let selector = confine_internal(selector);
            let asap = Asap::builder().resolution(resolution).build();
            match shared
                .db
                .smooth_query_selector(&selector, &asap, start, end, bucket)
            {
                Ok(frames) => {
                    let rows = frames.len();
                    let render_started = Instant::now();
                    let response = protocol::render_smooth(&frames);
                    let render = render_started.elapsed();
                    shared.metrics.smooth_render.observe_duration(render);
                    (response, false, rows, render)
                }
                Err(e) => fail(e.to_string()),
            }
        }
        Command::Stats => (render_stats(shared), false, 0, Duration::ZERO),
        Command::Metrics => (render_metrics(shared), false, 0, Duration::ZERO),
        Command::Health => (render_health(shared), false, 0, Duration::ZERO),
        Command::Snapshot { path } => {
            let target =
                match resolve_snapshot_path(shared.config.snapshot_dir.as_deref(), &path) {
                    Ok(target) => target,
                    Err(e) => return fail(e),
                };
            // Hold the gate for the whole save: the compaction scheduler
            // pauses rather than mutating the store mid-snapshot.
            let _gate = shared.snapshot_gate();
            match snapshot_command(shared, &target) {
                Ok(()) => (format!("OK snapshot {path}\n"), false, 0, Duration::ZERO),
                Err(e) => fail(e),
            }
        }
        Command::Subscribe {
            selector,
            every,
            alert,
        } => {
            // Same internal-series confinement as RANGE/SMOOTH: a
            // wildcard subscription watches raw series, not the
            // compactor's pre-aggregates or the self-scrape stream.
            let selector = confine_internal(selector);
            match session.subscribe(selector, every, alert) {
                Ok((id, every)) => {
                    let alert = alert.map_or_else(|| "none".to_owned(), |k| k.to_string());
                    (
                        format!("OK subscribed {id} every={every} alert={alert}\n"),
                        false,
                        0,
                        Duration::ZERO,
                    )
                }
                Err(e) => fail(e),
            }
        }
        Command::Unsubscribe { id } => match session.unsubscribe(id) {
            Ok(n) => (format!("OK unsubscribed {n}\n"), false, 0, Duration::ZERO),
            Err(e) => fail(e),
        },
        Command::Shutdown => ("OK shutting down\n".to_owned(), true, 0, Duration::ZERO),
    }
}

/// The work behind a client `SNAPSHOT <name>`, run under the snapshot
/// gate the caller holds. What "snapshot" means depends on the
/// durability configuration — with a WAL, a plain export alone would
/// leave the operator's freshest on-disk state out of the recovery set,
/// so the command advances the real checkpoint wherever one exists:
///
/// * **No WAL** — the named export *is* the durable state; save it.
/// * **WAL + checkpoint chain** — run a real incremental checkpoint
///   (rotate → delta → manifest → discard covered generations), then
///   write the named export as a bonus standalone copy.
/// * **WAL + boot snapshot, no chain** — recovery boots from
///   [`ServerConfig::final_snapshot`] plus the log tail, so refresh
///   *that* file under one rotation boundary before any generation is
///   discarded; the named export rides along under the same boundary.
/// * **WAL only** — recovery replays the log from the start, so nothing
///   may be discarded: the named export stays a plain copy.
fn snapshot_command(shared: &Shared, target: &Path) -> Result<(), String> {
    let err = |e: SnapshotError| e.to_string();
    let Some(wal) = &shared.wal else {
        return shared.db.save(target).map_err(err);
    };
    if shared.has_chain() {
        shared.run_checkpoint()?;
        return shared.db.save(target).map_err(err);
    }
    if let Some(boot) = shared.config.final_snapshot.clone() {
        let boundary = wal.rotate().map_err(|e| e.to_string())?;
        shared.db.save(&boot).map_err(err)?;
        shared.db.save(target).map_err(err)?;
        wal.discard_before(boundary).map_err(|e| e.to_string())?;
        return Ok(());
    }
    shared.db.save(target).map_err(err)
}

/// Hides server-internal series from `RANGE` / `SMOOTH` / `SUBSCRIBE`
/// matching by default: unless the selector itself takes a position on
/// the `__rollup__` tag (e.g. `metric{__rollup__=*}` to opt in, or
/// `metric{__rollup__=60}` for one level) it must be absent, and
/// likewise for the self-scrape `__self__` tag — a wildcard watches
/// user telemetry, not the compactor's pre-aggregates or the server's
/// own metrics stream.
fn confine_internal(selector: Selector) -> Selector {
    let selector = if selector.references_tag(ROLLUP_TAG) {
        selector
    } else {
        selector.tag_absent(ROLLUP_TAG)
    };
    if selector.references_tag(SELF_TAG) {
        selector
    } else {
        selector.tag_absent(SELF_TAG)
    }
}

fn fmt_watermark(watermark: Option<i64>) -> String {
    watermark.map_or_else(|| "none".to_owned(), |ts| ts.to_string())
}

fn as_u64(v: usize) -> u64 {
    v as u64
}

/// The one source of truth behind every metrics surface — `STATS`
/// (`key value` lines), `METRICS` (Prometheus exposition), and the
/// self-scrape (line protocol): the server's live sources sampled in
/// the stable `STATS` key order (the key set is append-only — new keys
/// go at the end of their source, never between existing ones),
/// followed by everything the metrics registry accumulated (latency
/// histograms, event-core counters), name-sorted.
fn collect_metrics(shared: &Shared) -> Vec<MetricSample> {
    let totals = shared.ingest_totals();
    let compaction = shared
        .compaction
        .lock()
        .expect("compaction stats poisoned")
        .clone();
    let checkpoint = shared
        .checkpoint
        .lock()
        .expect("checkpoint stats poisoned")
        .clone();
    let wal_stats = shared.wal.as_ref().map(Wal::stats).unwrap_or_default();
    let subs = shared.subscriptions.stats();
    let occupancy = shared.db.shard_occupancy();

    let mut samples = vec![
        MetricSample::gauge(
            "ingest.active_connections",
            as_u64(shared.active.load(Ordering::Acquire)),
        ),
        MetricSample::counter("ingest.total_connections", totals.connections),
        MetricSample::counter("ingest.rejected_connections", totals.rejected_connections),
        MetricSample::counter("ingest.lines", as_u64(totals.lines)),
        MetricSample::counter("ingest.points", as_u64(totals.points)),
        MetricSample::counter("ingest.reordered", as_u64(totals.reordered)),
        MetricSample::counter("ingest.dropped_late", as_u64(totals.dropped_late)),
        MetricSample::counter("ingest.dropped_duplicate", as_u64(totals.dropped_duplicate)),
        MetricSample::counter("ingest.parse_failures", as_u64(totals.parse_failures)),
        MetricSample::counter("ingest.write_failures", as_u64(totals.write_failures)),
        MetricSample::gauge("ingest.in_flight_chunks", as_u64(totals.in_flight_chunks)),
        MetricSample::gauge("ingest.pending_reorder", as_u64(totals.pending_reorder)),
        MetricSample::gauge(
            "query.active_connections",
            as_u64(shared.query_active.load(Ordering::Acquire)),
        ),
        MetricSample::counter(
            "query.rejected_connections",
            shared.query_rejected.load(Ordering::Acquire),
        ),
        MetricSample::gauge(
            "compaction.enabled",
            u64::from(shared.config.compaction.is_some()),
        ),
        MetricSample::counter("compaction.runs", compaction.runs),
        MetricSample::counter("compaction.skipped", compaction.skipped),
        MetricSample::counter("compaction.errors", compaction.errors),
        MetricSample::counter("compaction.rolled_up", as_u64(compaction.rolled_up)),
        MetricSample::counter("compaction.raw_evicted", as_u64(compaction.raw_evicted)),
        MetricSample::counter(
            "compaction.rollup_evicted",
            as_u64(compaction.rollup_evicted),
        ),
        MetricSample::gauge("checkpoint.enabled", u64::from(shared.has_chain())),
        MetricSample::counter("checkpoint.runs", checkpoint.runs),
        MetricSample::counter("checkpoint.errors", checkpoint.errors),
        MetricSample::gauge("checkpoint.last_duration_ms", checkpoint.last_duration_ms),
        MetricSample::gauge("checkpoint.chain_links", as_u64(checkpoint.chain_links)),
        MetricSample::counter("checkpoint.rebases", checkpoint.rebases),
        MetricSample::counter("checkpoint.bytes_written", checkpoint.bytes_written),
        MetricSample::counter(
            "checkpoint.wal_files_discarded",
            checkpoint.wal_files_discarded,
        ),
        MetricSample::gauge("wal.enabled", u64::from(shared.wal.is_some())),
        MetricSample::counter("wal.records", wal_stats.records),
        MetricSample::counter("wal.bytes", wal_stats.bytes),
        MetricSample::counter("wal.fsyncs", wal_stats.fsyncs),
        MetricSample::counter("wal.rotations", wal_stats.rotations),
        MetricSample::counter("wal.replay.files", as_u64(shared.wal_replay.files)),
        MetricSample::counter("wal.replay.applied", shared.wal_replay.applied),
        MetricSample::counter("wal.replay.skipped", shared.wal_replay.skipped),
        MetricSample::counter("wal.replay.damaged", as_u64(shared.wal_replay.damaged)),
        MetricSample::gauge("subscriptions.active", as_u64(subs.active)),
        MetricSample::counter("subscriptions.total", subs.total),
        MetricSample::gauge("subscriptions.series_tracked", as_u64(subs.series_tracked)),
        MetricSample::counter("subscriptions.points_seen", subs.points_seen),
        MetricSample::counter("subscriptions.frames_pushed", subs.frames_pushed),
        MetricSample::counter("subscriptions.alerts_pushed", subs.alerts_pushed),
        MetricSample::counter("subscriptions.frames_lagged", subs.frames_lagged),
    ];
    let series: usize = occupancy.iter().map(|o| o.series).sum();
    let points: usize = occupancy.iter().map(|o| o.points).sum();
    let blocks: usize = occupancy.iter().map(|o| o.blocks).sum();
    let bytes: usize = occupancy.iter().map(|o| o.compressed_bytes).sum();
    let watermark = occupancy.iter().filter_map(|o| o.watermark).max();
    samples.push(MetricSample::gauge("store.shards", as_u64(occupancy.len())));
    samples.push(MetricSample::gauge("store.series", as_u64(series)));
    samples.push(MetricSample::gauge("store.points", as_u64(points)));
    samples.push(MetricSample::gauge("store.blocks", as_u64(blocks)));
    samples.push(MetricSample::gauge("store.compressed_bytes", as_u64(bytes)));
    samples.push(MetricSample::text(
        "store.watermark",
        fmt_watermark(watermark),
    ));
    for (i, shard) in occupancy.iter().enumerate() {
        samples.push(MetricSample::gauge(
            format!("shard.{i}.series"),
            as_u64(shard.series),
        ));
        samples.push(MetricSample::gauge(
            format!("shard.{i}.points"),
            as_u64(shard.points),
        ));
        samples.push(MetricSample::gauge(
            format!("shard.{i}.blocks"),
            as_u64(shard.blocks),
        ));
        samples.push(MetricSample::gauge(
            format!("shard.{i}.compressed_bytes"),
            as_u64(shard.compressed_bytes),
        ));
        samples.push(MetricSample::text(
            format!("shard.{i}.watermark"),
            fmt_watermark(shard.watermark),
        ));
    }
    // Keys added after the original STATS set — appended, per the
    // append-only contract.
    samples.push(MetricSample::counter("wal.errors", wal_stats.errors));
    samples.push(MetricSample::gauge(
        "subscriptions.outbox_lines",
        as_u64(subs.outbox_lines),
    ));
    // Everything the registry accumulated: phase-latency histograms,
    // WAL append/fsync timings, event-core sweep counters, …
    samples.extend(shared.registry.snapshot());
    samples
}

/// The `STATS` response: `OK stats`, `key value` lines (a stable,
/// append-only key set), `END`. Histograms render as six derived lines
/// (`<name>.count/.sum/.p50/.p90/.p99/.max`).
fn render_stats(shared: &Shared) -> String {
    let mut out = String::from("OK stats\n");
    for sample in collect_metrics(shared) {
        match &sample.value {
            asap_tsdb::MetricValue::Counter(v) | asap_tsdb::MetricValue::Gauge(v) => {
                out.push_str(&format!("{} {v}\n", sample.name));
            }
            asap_tsdb::MetricValue::Text(v) => {
                out.push_str(&format!("{} {v}\n", sample.name));
            }
            asap_tsdb::MetricValue::Histogram(h) => {
                out.push_str(&format!("{}.count {}\n", sample.name, h.count));
                out.push_str(&format!("{}.sum {}\n", sample.name, h.sum));
                out.push_str(&format!("{}.p50 {}\n", sample.name, h.quantile(0.50)));
                out.push_str(&format!("{}.p90 {}\n", sample.name, h.quantile(0.90)));
                out.push_str(&format!("{}.p99 {}\n", sample.name, h.quantile(0.99)));
                out.push_str(&format!("{}.max {}\n", sample.name, h.max));
            }
        }
    }
    out.push_str("END\n");
    out
}

/// The `METRICS` response: `OK metrics`, Prometheus text exposition of
/// the same samples `STATS` reads, `END`.
fn render_metrics(shared: &Shared) -> String {
    let mut out = String::from("OK metrics\n");
    out.push_str(&obs::render_prometheus(&collect_metrics(shared)));
    out.push_str("END\n");
    out
}

/// Quotes a failure reason for a single-line `key="value"` token:
/// interior double quotes become single quotes so the token stays
/// splittable on whitespace-outside-quotes.
fn quote_reason(reason: &str) -> String {
    format!("\"{}\"", reason.replace('"', "'").replace('\n', "; "))
}

/// The `HEALTH` response: one line of `key=value` tokens. `OK healthy`
/// while every durability subsystem's *latest* pass succeeded;
/// `DEGRADED` with one quoted `<subsystem>="<reason>"` token per
/// currently failing subsystem (WAL append/fsync, compaction,
/// checkpoint — each cleared when a later pass succeeds), followed by
/// the same trailing fields as the healthy line.
fn render_health(shared: &Shared) -> String {
    let totals = shared.ingest_totals();
    let compaction = shared
        .compaction
        .lock()
        .expect("compaction stats poisoned")
        .clone();
    let checkpoint_error = shared
        .checkpoint
        .lock()
        .expect("checkpoint stats poisoned")
        .last_error
        .clone();
    let occupancy = shared.db.shard_occupancy();
    let series: usize = occupancy.iter().map(|o| o.series).sum();
    let points: usize = occupancy.iter().map(|o| o.points).sum();
    let watermark = occupancy.iter().filter_map(|o| o.watermark).max();
    let mut reasons = Vec::new();
    if let Some(e) = shared.wal.as_ref().and_then(Wal::last_error) {
        reasons.push(format!("wal={}", quote_reason(&e)));
    }
    if let Some(e) = &compaction.last_error {
        reasons.push(format!("compaction={}", quote_reason(e)));
    }
    if let Some(e) = &checkpoint_error {
        reasons.push(format!("checkpoint={}", quote_reason(e)));
    }
    let status = if reasons.is_empty() {
        "OK healthy".to_owned()
    } else {
        format!("DEGRADED {}", reasons.join(" "))
    };
    format!(
        "{status} connections={}/{} shards={} series={} points={} watermark={} \
         ingested_points={} compaction_runs={}\n",
        shared.active.load(Ordering::Acquire),
        shared.config.max_ingest_connections,
        occupancy.len(),
        series,
        points,
        fmt_watermark(watermark),
        totals.points,
        compaction.runs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_last_error_clears_when_a_later_pass_succeeds() {
        let mut stats = CompactionStats::default();
        stats.record_failure("disk on fire".to_owned());
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.last_error.as_deref(), Some("disk on fire"));

        let report = CompactionReport {
            rolled_up: 7,
            ..CompactionReport::default()
        };
        stats.record_success(&report);
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.rolled_up, 7);
        assert_eq!(stats.errors, 1, "error history is cumulative");
        assert_eq!(stats.last_error, None, "a success clears the latest error");
    }

    #[test]
    fn checkpoint_last_error_clears_when_a_later_pass_succeeds() {
        let mut stats = CheckpointStats::default();
        stats.record_failure("manifest write failed".to_owned());
        assert_eq!(stats.errors, 1);
        assert!(stats.last_error.is_some());

        let report = ChainCheckpointReport {
            rebased: true,
            link_written: true,
            bytes_written: 123,
            links: 1,
            wal_files_discarded: 2,
            completed: true,
            ..ChainCheckpointReport::default()
        };
        stats.record_success(&report, Duration::from_millis(5));
        assert_eq!(stats.runs, 1);
        assert_eq!(stats.rebases, 1);
        assert_eq!(stats.chain_links, 1);
        assert_eq!(stats.bytes_written, 123);
        assert_eq!(stats.wal_files_discarded, 2);
        assert_eq!(stats.last_duration_ms, 5);
        assert_eq!(stats.errors, 1, "error history is cumulative");
        assert_eq!(stats.last_error, None, "a success clears the latest error");
    }

    #[test]
    fn snapshot_targets_are_confined_to_the_configured_directory() {
        let err = resolve_snapshot_path(None, "a.bin").unwrap_err();
        assert!(err.contains("disabled"), "{err}");

        let dir = Path::new("/var/lib/asap/snapshots");
        assert_eq!(
            resolve_snapshot_path(Some(dir), "a.bin").unwrap(),
            dir.join("a.bin")
        );
        assert_eq!(
            resolve_snapshot_path(Some(dir), "nested/a.bin").unwrap(),
            dir.join("nested/a.bin")
        );
        for bad in [
            "/etc/passwd",
            "../escape.bin",
            "a/../../escape.bin",
            "..",
            "./a.bin",
        ] {
            let err = resolve_snapshot_path(Some(dir), bad)
                .expect_err(&format!("`{bad}` was accepted"));
            assert!(err.contains("relative path"), "`{bad}` -> {err}");
        }
    }
}
