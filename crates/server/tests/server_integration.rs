//! End-to-end tests of the TCP server: real sockets on ephemeral ports,
//! concurrent clients, and — following the repo-wide pattern
//! (`stream_properties.rs`, `ops_properties.rs`) — every expectation
//! derived from a single-shard serial oracle rather than baked in.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use asap_core::Asap;
use asap_server::{
    protocol, CheckpointConfig, CompactionClock, CompactionConfig, CoreMode, Server, ServerConfig,
};
use asap_tsdb::{
    line_protocol, smooth, Aggregator, Compactor, DataPoint, FsyncPolicy, IngestConfig, RangeQuery,
    RetentionPolicy, RollupLevel, Schedule, Selector, SeriesKey, ShardedConfig, ShardedDb, Tsdb,
    TsdbConfig, WalConfig, ROLLUP_TAG,
};

const LATENESS: i64 = 40;

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

/// The fleet's telemetry, per-series sorted: `hosts` series × `points`
/// samples of a noisy periodic signal ASAP has something to do with.
fn sorted_doc(hosts: usize, points: i64) -> Vec<String> {
    let mut lines = Vec::new();
    for t in 0..points {
        for h in 0..hosts {
            let v = (std::f64::consts::TAU * t as f64 / 48.0).sin()
                + 0.4 * if t % 2 == 0 { 1.0 } else { -1.0 }
                + h as f64;
            lines.push(format!("cpu,host=h{h} usage={v} {t}"));
        }
    }
    lines
}

/// Displaces lines by a deterministic jitter strictly below
/// [`LATENESS`] — bounded disorder the per-connection reorder stage
/// must repair losslessly.
fn shuffle_within_lateness(lines: &[String]) -> Vec<String> {
    let ts_of = |line: &str| -> i64 { line.rsplit(' ').next().unwrap().parse().unwrap() };
    let mut keyed: Vec<(i64, usize, &String)> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| (ts_of(line) + (i as i64 * 13) % LATENESS, i, line))
        .collect();
    keyed.sort_by_key(|&(key, i, _)| (key, i));
    keyed.into_iter().map(|(_, _, line)| line.clone()).collect()
}

/// Streams `doc` to the ingest port in small pieces, half-closes, and
/// returns the server's final report line.
fn ingest_doc(addr: SocketAddr, doc: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect ingest");
    for piece in doc.as_bytes().chunks(113) {
        conn.write_all(piece).expect("write telemetry");
    }
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut report = String::new();
    conn.read_to_string(&mut report).expect("read report");
    report.trim().to_owned()
}

/// Like [`ingest_doc`], but wraps the byte stream in back-to-back
/// `BATCH` frames cut at arbitrary (mostly mid-line) boundaries —
/// framing must be semantically invisible.
fn ingest_doc_framed(addr: SocketAddr, doc: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect ingest");
    for window in doc.as_bytes().chunks(777) {
        conn.write_all(format!("BATCH {}\n", window.len()).as_bytes())
            .expect("write frame header");
        conn.write_all(window).expect("write frame payload");
    }
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut report = String::new();
    conn.read_to_string(&mut report).expect("read report");
    report.trim().to_owned()
}

/// Sends one command line on a fresh query connection and reads the
/// complete response (single line, or `OK …`-to-`END` block).
fn query(addr: SocketAddr, command: &str) -> String {
    let conn = TcpStream::connect(addr).expect("connect query");
    (&conn)
        .write_all(format!("{command}\n").as_bytes())
        .expect("send command");
    let mut reader = BufReader::new(&conn);
    let mut response = String::new();
    let mut first = String::new();
    reader.read_line(&mut first).expect("read response head");
    response.push_str(&first);
    let multi_line = first
        .strip_prefix("OK ")
        .is_some_and(|rest| rest.trim() == "stats" || rest.trim().parse::<usize>().is_ok());
    if multi_line {
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read response body") == 0 {
                panic!("response ended before END: {response}");
            }
            response.push_str(&line);
            if line.trim() == "END" {
                break;
            }
        }
    }
    response
}

/// Extracts one counter from a `STATS` response.
fn stat(stats: &str, key: &str) -> i64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("STATS lacks `{key}`:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

/// Polls `STATS` until `predicate` holds or the deadline passes.
fn wait_for_stats(addr: SocketAddr, what: &str, predicate: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = query(addr, "STATS");
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last STATS:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The acceptance-criteria wall, parameterized over the I/O core: N
/// concurrent TCP clients stream a lateness-shuffled document (hosts
/// partitioned across clients, so per-series order stays within one
/// connection's reorder stage); the served store and both protocol
/// responses must be byte-identical to the single-shard serial oracle
/// fed the sorted document. The `framed` variant wraps every client's
/// stream in `BATCH` frames, which must change nothing.
fn multi_client_oracle_wall(core: CoreMode, framed: bool) {
    const HOSTS: usize = 6;
    const POINTS: i64 = 400;
    const CLIENTS: usize = 3;

    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(4, 32)),
        ServerConfig {
            core,
            ingest: IngestConfig {
                lateness: Some(LATENESS),
                ..IngestConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Partition hosts across clients: per-series arrival order is only
    // defined within one connection (each has its own reorder stage).
    let all = sorted_doc(HOSTS, POINTS);
    let client_docs: Vec<String> = (0..CLIENTS)
        .map(|c| {
            let mine: Vec<String> = all
                .iter()
                .filter(|line| {
                    let host: usize = line
                        .split("host=h")
                        .nth(1)
                        .unwrap()
                        .split(' ')
                        .next()
                        .unwrap()
                        .parse()
                        .unwrap();
                    host % CLIENTS == c
                })
                .cloned()
                .collect();
            shuffle_within_lateness(&mine).join("\n") + "\n"
        })
        .collect();

    let ingest_addr = server.ingest_addr();
    let send = if framed { ingest_doc_framed } else { ingest_doc };
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = client_docs
            .iter()
            .map(|doc| scope.spawn(move || send(ingest_addr, doc)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in &reports {
        assert!(report.contains("clean=true"), "dirty client report: {report}");
        assert!(report.contains("dropped_late=0"), "{report}");
    }

    // The serial single-shard oracle over the *sorted* document.
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 32 });
    let total = line_protocol::ingest(&oracle, &(all.join("\n") + "\n"), 0).unwrap();
    assert_eq!(total, HOSTS * POINTS as usize);

    // Store identity: every query shape equals the oracle.
    let db = server.db();
    assert_eq!(
        db.query_selector(&Selector::any(), full()).unwrap(),
        oracle.query_selector(&Selector::any(), full()).unwrap()
    );

    // Protocol identity: the TCP responses are byte-identical to the
    // oracle's results rendered through the same protocol.
    let query_addr = server.query_addr();
    // Line protocol keys series as `measurement.field`.
    let range_cmd = format!("RANGE cpu.usage 0 {POINTS}");
    let oracle_range = oracle
        .query_selector(&Selector::metric("cpu.usage"), RangeQuery::raw(0, POINTS))
        .unwrap();
    assert!(
        !oracle_range.is_empty(),
        "oracle RANGE expectation is vacuous"
    );
    assert_eq!(
        query(query_addr, &range_cmd),
        protocol::render_range(&oracle_range)
    );
    let bucketed_cmd = format!("RANGE cpu.usage{{host=h1}} 0 {POINTS} 20 max");
    let oracle_bucketed = oracle
        .query_selector(
            &Selector::metric("cpu.usage").tag_eq("host", "h1"),
            RangeQuery::bucketed(0, POINTS, 20).aggregate(Aggregator::Max),
        )
        .unwrap();
    assert!(
        !oracle_bucketed.is_empty(),
        "oracle bucketed expectation is vacuous"
    );
    assert_eq!(
        query(query_addr, &bucketed_cmd),
        protocol::render_range(&oracle_bucketed)
    );
    let smooth_cmd = format!("SMOOTH cpu.usage 0 {POINTS} 1 100");
    let asap = Asap::builder().resolution(100).build();
    let oracle_frames = smooth::smooth_query_selector(
        &oracle,
        &Selector::metric("cpu.usage"),
        &asap,
        0,
        POINTS,
        1,
    )
    .unwrap();
    assert!(
        !oracle_frames.is_empty(),
        "oracle SMOOTH expectation is vacuous"
    );
    assert_eq!(
        query(query_addr, &smooth_cmd),
        protocol::render_smooth(&oracle_frames)
    );

    // Live counters aggregate the connections' reports.
    let stats = query(query_addr, "STATS");
    assert_eq!(stat(&stats, "ingest.points") as usize, total);
    assert_eq!(stat(&stats, "ingest.lines") as usize, HOSTS * POINTS as usize);
    assert_eq!(stat(&stats, "ingest.total_connections") as usize, CLIENTS);
    assert_eq!(stat(&stats, "ingest.write_failures"), 0);
    assert_eq!(stat(&stats, "ingest.dropped_late"), 0);
    assert_eq!(stat(&stats, "store.points") as usize, total);
    assert_eq!(stat(&stats, "store.watermark"), POINTS - 1);
    assert!(stat(&stats, "ingest.reordered") > 0, "shuffle produced no disorder?");

    let health = query(query_addr, "HEALTH");
    assert!(health.starts_with("OK healthy "), "{health}");
    assert!(health.contains(&format!("points={total}")), "{health}");

    let final_report = server.shutdown();
    assert_eq!(final_report.ingest.points, total);
    assert_eq!(final_report.ingest.in_flight_chunks, 0);
    assert_eq!(final_report.ingest.pending_reorder, 0);
}

#[test]
fn multi_client_tcp_ingest_matches_single_shard_serial_oracle() {
    multi_client_oracle_wall(CoreMode::Event, false);
}

/// The same wall on the legacy core — with `BATCH`-framed clients, so
/// the threaded framing path is held to the same oracle.
#[test]
fn multi_client_tcp_ingest_matches_oracle_on_the_threaded_core() {
    multi_client_oracle_wall(CoreMode::Threaded, true);
}

/// Graceful shutdown must flush reorder buffers of connections that are
/// still open: points inside the lateness window are applied via
/// `finish()`, not lost.
#[test]
fn graceful_shutdown_flushes_reorder_buffers_of_open_connections() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 16)),
        ServerConfig {
            ingest: IngestConfig {
                lateness: Some(1_000),
                ..IngestConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let db = server.db();

    // All three points sit inside the lateness window, so they stay in
    // the reorder buffer until a flush; the connection stays open.
    let conn = TcpStream::connect(server.ingest_addr()).unwrap();
    (&conn)
        .write_all(b"m v=2 2\nm v=1 1\nm v=3 3\n")
        .unwrap();
    wait_for_stats(server.query_addr(), "the server to consume 3 lines", |stats| {
        stat(stats, "ingest.lines") >= 3
    });
    assert_eq!(
        db.query(&SeriesKey::metric("m.v"), full())
            .map(|points| points.len())
            .unwrap_or(0),
        0,
        "points should still be pending in the reorder stage"
    );

    let report = server.shutdown();
    assert_eq!(report.ingest.points, 3, "finish() flushed the buffers");
    assert_eq!(report.ingest.reordered, 1);
    assert_eq!(report.ingest.pending_reorder, 0);
    assert_eq!(
        db.query(&SeriesKey::metric("m.v"), full()).unwrap(),
        vec![
            DataPoint::new(1, 1.0),
            DataPoint::new(2, 2.0),
            DataPoint::new(3, 3.0)
        ],
        "flushed points applied in timestamp order"
    );
    // The drained server handed the report back to the open client too.
    let mut tail = String::new();
    let mut conn = conn;
    conn.read_to_string(&mut tail).unwrap();
    assert!(tail.contains("points=3"), "client report: {tail}");
}

/// Draining a connection mid-stream cuts its bytes at an arbitrary
/// read boundary, so the unterminated tail may be a truncated line
/// (`m v=9 99` cut out of `m v=9 990\n` parses as a valid point with a
/// wrong timestamp). The drain must abort — applying every complete
/// line and flushing reorder buffers, but discarding that tail —
/// instead of finishing it into the store and the final snapshot.
#[test]
fn drain_discards_the_partial_trailing_line_of_open_connections() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 16)),
        ServerConfig {
            ingest: IngestConfig {
                lateness: Some(1_000),
                ..IngestConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let db = server.db();

    // Two complete lines held in the reorder stage, plus an
    // unterminated tail that would parse as a valid (wrong) point.
    let conn = TcpStream::connect(server.ingest_addr()).unwrap();
    (&conn).write_all(b"m v=2 2\nm v=1 1\nm v=9 99").unwrap();
    wait_for_stats(server.query_addr(), "the server to consume 2 lines", |stats| {
        stat(stats, "ingest.lines") >= 2
    });

    let report = server.shutdown();
    assert!(
        report.ingest.points <= 2,
        "truncated tail was ingested: {:?}",
        report.ingest
    );
    assert_eq!(report.ingest.pending_reorder, 0);
    assert_eq!(
        db.query(&SeriesKey::metric("m.v"), full()).unwrap(),
        vec![DataPoint::new(1, 1.0), DataPoint::new(2, 2.0)],
        "drain must flush the complete lines and only those"
    );
    drop(conn);
}

/// Connections over the cap are refused with one `ERR` line and
/// counted; the accepted connection is unaffected.
#[test]
fn connection_cap_rejects_excess_clients() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 16)),
        ServerConfig {
            max_ingest_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let first = TcpStream::connect(server.ingest_addr()).unwrap();
    (&first).write_all(b"m v=1 1\n").unwrap();
    wait_for_stats(server.query_addr(), "the first connection to register", |stats| {
        stat(stats, "ingest.active_connections") == 1
    });

    let second = TcpStream::connect(server.ingest_addr()).unwrap();
    let mut rejection = String::new();
    BufReader::new(&second).read_line(&mut rejection).unwrap();
    assert!(
        rejection.starts_with("ERR connection limit reached"),
        "{rejection}"
    );

    first.shutdown(Shutdown::Write).unwrap();
    let mut report = String::new();
    let mut first = first;
    first.read_to_string(&mut report).unwrap();
    assert!(report.contains("points=1"), "{report}");

    let final_report = server.shutdown();
    assert_eq!(final_report.ingest.rejected_connections, 1);
    assert_eq!(final_report.ingest.connections, 1);
    assert_eq!(final_report.ingest.points, 1);
}

/// Malformed requests get single-line `ERR` responses and the
/// connection keeps serving subsequent requests.
#[test]
fn protocol_errors_do_not_poison_the_connection() {
    let server = Server::start(ShardedDb::new(), ServerConfig::default()).unwrap();
    let conn = TcpStream::connect(server.query_addr()).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    fn ask(conn: &TcpStream, reader: &mut impl BufRead, command: &str) -> String {
        (&*conn)
            .write_all(format!("{command}\n").as_bytes())
            .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    }
    assert!(ask(&conn, &mut reader, "FLY me to the moon").starts_with("ERR unknown command"));
    assert!(ask(&conn, &mut reader, "RANGE *").starts_with("ERR usage:"));
    assert!(ask(&conn, &mut reader, "RANGE cpu{open 0 10").starts_with("ERR selector"));
    assert!(ask(&conn, &mut reader, "SMOOTH * 0 100 10 0").starts_with("ERR resolution"));
    // Client-chosen ranges must not size server allocations: a grid of
    // 2^40 buckets is refused before it reaches the engine…
    assert!(
        ask(&conn, &mut reader, "RANGE * 0 1099511627776 1").starts_with("ERR grid of"),
        "giant grid not refused"
    );
    assert!(ask(&conn, &mut reader, "SMOOTH * 0 1099511627776 1 100").starts_with("ERR grid of"));
    // …and a span that overflows i64 is rejected by query validation
    // instead of wrapping.
    assert!(
        ask(
            &conn,
            &mut reader,
            "RANGE * -9223372036854775807 9223372036854775807 5"
        )
        .starts_with("ERR "),
        "overflowing span not rejected"
    );
    // SNAPSHOT is disabled unless the server is configured with a
    // snapshot directory (this server is not).
    assert!(
        ask(&conn, &mut reader, "SNAPSHOT a.bin").starts_with("ERR SNAPSHOT is disabled"),
        "SNAPSHOT served without a configured directory"
    );
    // A selector matching no series is an empty result, not an error…
    assert!(ask(&conn, &mut reader, "RANGE ghost 0 10").starts_with("OK 0"));
    let mut end = String::new();
    reader.read_line(&mut end).unwrap();
    assert_eq!(end.trim(), "END");
    // …and the connection is still healthy.
    assert!(ask(&conn, &mut reader, "HEALTH").starts_with("OK healthy"));

    // A request "line" that never ends is cut off at the length cap
    // with one ERR, not accumulated forever. Exactly cap+1 bytes: the
    // server consumes every byte before refusing, so the close is a
    // clean FIN and the ERR is always readable.
    let mut hog = TcpStream::connect(server.query_addr()).unwrap();
    hog.write_all(&vec![b'x'; 64 * 1024 + 1]).unwrap();
    let mut refused = String::new();
    hog.read_to_string(&mut refused).unwrap();
    assert!(
        refused.starts_with("ERR request line exceeds"),
        "oversized line answer: {refused:?}"
    );
    server.shutdown();
}

/// The query port has its own connection cap — remote clients must not
/// be able to spawn unbounded server threads.
#[test]
fn query_connection_cap_rejects_excess_clients() {
    let server = Server::start(
        ShardedDb::new(),
        ServerConfig {
            max_query_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // The first connection occupies the only slot…
    let held = TcpStream::connect(server.query_addr()).unwrap();
    (&held).write_all(b"HEALTH\n").unwrap();
    let mut ok = String::new();
    BufReader::new(&held).read_line(&mut ok).unwrap();
    assert!(ok.starts_with("OK healthy"), "{ok}");
    // …so the second is refused with one ERR line.
    let second = TcpStream::connect(server.query_addr()).unwrap();
    let mut rejection = String::new();
    BufReader::new(&second).read_line(&mut rejection).unwrap();
    assert!(
        rejection.starts_with("ERR connection limit reached"),
        "{rejection}"
    );
    // Releasing the slot frees it for the next client.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let retry = TcpStream::connect(server.query_addr()).unwrap();
        (&retry).write_all(b"HEALTH\n").unwrap();
        let mut line = String::new();
        BufReader::new(&retry).read_line(&mut line).unwrap();
        if line.starts_with("OK healthy") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after drop; last answer: {line}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

/// `SNAPSHOT` writes a loadable v2 snapshot equal to the live store —
/// confined to the configured snapshot directory; escaping targets are
/// refused.
#[test]
fn snapshot_command_round_trips_the_store() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(3, 16)),
        ServerConfig {
            snapshot_dir: Some(std::env::temp_dir()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let doc = sorted_doc(3, 50).join("\n") + "\n";
    let report = ingest_doc(server.ingest_addr(), &doc);
    assert!(report.contains("clean=true"), "{report}");

    let name = format!("asap_server_snap_{}.bin", std::process::id());
    let response = query(server.query_addr(), &format!("SNAPSHOT {name}"));
    assert_eq!(response.trim(), format!("OK snapshot {name}"));

    let path = std::env::temp_dir().join(&name);
    let restored = ShardedDb::load(&path, ShardedConfig::new(5, 16)).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        restored.query_selector(&Selector::any(), full()).unwrap(),
        server.db().query_selector(&Selector::any(), full()).unwrap()
    );

    // Unauthenticated clients must not pick arbitrary server paths:
    // absolute targets and `..` escapes are refused before any I/O…
    for escape in ["/nonexistent-dir/x/y.bin", "../escape.bin", "a/../../b"] {
        let refused = query(server.query_addr(), &format!("SNAPSHOT {escape}"));
        assert!(
            refused.starts_with("ERR snapshot target"),
            "`{escape}` -> {refused}"
        );
    }
    // …while an in-directory destination that fails at save time is an
    // ERR, not a dead server.
    let bad = query(server.query_addr(), "SNAPSHOT nonexistent-subdir/x/y.bin");
    assert!(bad.starts_with("ERR "), "{bad}");
    assert!(query(server.query_addr(), "HEALTH").starts_with("OK healthy"));
    server.shutdown();
}

/// The background scheduler's compaction converges to exactly what a
/// serial `Compactor::run` produces on the oracle at the same logical
/// time — and its counters surface through `STATS`.
#[test]
fn background_scheduler_compacts_like_serial_compactor() {
    const POINTS: i64 = 100;
    let policy = RetentionPolicy {
        raw_ttl: None,
        rollups: vec![RollupLevel {
            bucket: 10,
            aggregator: Aggregator::Mean,
            ttl: None,
        }],
    };
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(3, 16)),
        ServerConfig {
            compaction: Some(CompactionConfig {
                policy: policy.clone(),
                schedule: Schedule::every(Duration::from_millis(20))
                    .with_jitter(Duration::from_millis(10)),
                seed: 7,
                clock: CompactionClock::DataWatermark,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let doc = sorted_doc(2, POINTS).join("\n") + "\n";
    let report = ingest_doc(server.ingest_addr(), &doc);
    assert!(report.contains("clean=true"), "{report}");

    // The oracle: same data, one serial pass at the data watermark.
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 16 });
    line_protocol::ingest(&oracle, &doc, 0).unwrap();
    let expected = Compactor::new(policy)
        .unwrap()
        .run(&oracle, POINTS - 1)
        .unwrap();
    assert!(expected.rolled_up > 0, "oracle pass was a no-op");

    let stats = wait_for_stats(
        server.query_addr(),
        "the scheduler to materialize the rollups",
        |stats| stat(stats, "compaction.rolled_up") as usize >= expected.rolled_up,
    );
    assert_eq!(
        stat(&stats, "compaction.rolled_up") as usize,
        expected.rolled_up,
        "repeated scheduled passes must not double-count"
    );
    assert_eq!(stat(&stats, "compaction.errors"), 0);
    assert!(stat(&stats, "compaction.runs") >= 1);

    // Store identity after background compaction ≡ serial oracle.
    assert_eq!(
        server
            .db()
            .query_selector(&Selector::any(), full())
            .unwrap(),
        oracle.query_selector(&Selector::any(), full()).unwrap()
    );

    let final_report = server.shutdown();
    assert_eq!(final_report.compaction.rolled_up, expected.rolled_up);
    assert_eq!(final_report.compaction.errors, 0);
}

/// A client's `SHUTDOWN` command ends [`Server::run`], which drains and
/// returns the final report — the binary's lifecycle.
#[test]
fn shutdown_command_ends_run() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 16)),
        ServerConfig {
            final_snapshot: Some(std::env::temp_dir().join(format!(
                "asap_server_final_{}.bin",
                std::process::id()
            ))),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ingest_addr = server.ingest_addr();
    let query_addr = server.query_addr();
    let db = server.db();
    let runner = std::thread::spawn(move || server.run());

    let report = ingest_doc(ingest_addr, "m v=1 1\nm v=2 2\n");
    assert!(report.contains("points=2"), "{report}");
    let ack = query(query_addr, "SHUTDOWN");
    assert_eq!(ack.trim(), "OK shutting down");

    let final_report = runner.join().unwrap();
    assert_eq!(final_report.ingest.points, 2);
    assert_eq!(final_report.final_snapshot_error, None);

    // The final snapshot captured the drained store.
    let path = std::env::temp_dir().join(format!("asap_server_final_{}.bin", std::process::id()));
    let restored = ShardedDb::load(&path, ShardedConfig::new(2, 16)).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        restored.query_selector(&Selector::any(), full()).unwrap(),
        db.query_selector(&Selector::any(), full()).unwrap()
    );

    // Post-drain, both ports are closed to new work.
    assert!(
        TcpStream::connect(ingest_addr).is_err() || {
            let mut probe = TcpStream::connect(ingest_addr).unwrap();
            probe.write_all(b"m v=9 9\n").ok();
            let mut out = String::new();
            probe.read_to_string(&mut out).is_err() || out.is_empty()
        },
        "ingest port still serving after drain"
    );
}

/// A restart with `--wal-dir` recovers the first process's drained
/// state without any snapshot: the second server replays the sealed log
/// on boot and serves byte-identical `RANGE` and `SMOOTH` responses.
#[test]
fn restart_with_wal_recovers_the_drained_state() {
    const HOSTS: usize = 3;
    const POINTS: i64 = 120;
    let wal_dir = std::env::temp_dir().join(format!("asap_server_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = || ServerConfig {
        ingest: IngestConfig {
            lateness: Some(LATENESS),
            ..IngestConfig::default()
        },
        wal: Some(WalConfig {
            dir: wal_dir.clone(),
            fsync: FsyncPolicy::EveryN(8),
        }),
        ..ServerConfig::default()
    };

    let first = Server::start(ShardedDb::with_config(ShardedConfig::new(3, 16)), config()).unwrap();
    let doc = shuffle_within_lateness(&sorted_doc(HOSTS, POINTS)).join("\n") + "\n";
    let report = ingest_doc(first.ingest_addr(), &doc);
    assert!(report.contains("clean=true"), "{report}");
    let total = HOSTS * POINTS as usize;

    let range_cmd = format!("RANGE cpu.usage 0 {POINTS}");
    let smooth_cmd = format!("SMOOTH cpu.usage{{host=h1}} 0 {POINTS} 1 60");
    let before_range = query(first.query_addr(), &range_cmd);
    let before_smooth = query(first.query_addr(), &smooth_cmd);
    assert!(
        before_range.len() > 1_000 && before_range.contains("SERIES cpu.usage"),
        "pre-restart RANGE response is vacuous: {before_range}"
    );
    let stats = query(first.query_addr(), "STATS");
    assert_eq!(stat(&stats, "wal.enabled"), 1);
    assert_eq!(stat(&stats, "wal.records") as usize, total);
    assert!(stat(&stats, "wal.bytes") > 0);
    assert_eq!(stat(&stats, "wal.replay.files"), 0, "a fresh WAL dir has nothing to replay");
    let drained = first.shutdown(); // seals the log
    assert_eq!(drained.ingest.points, total);
    assert_eq!(drained.wal_seal_error, None);

    // Same WAL directory, empty store, different shard count: boot-time
    // replay re-routes by the store hash and rebuilds the drained state.
    let second =
        Server::start(ShardedDb::with_config(ShardedConfig::new(2, 16)), config()).unwrap();
    let replay = second.wal_replay_report();
    assert_eq!(replay.applied as usize, total);
    assert_eq!(replay.skipped, 0);
    assert_eq!(replay.damaged, 0);
    assert_eq!(query(second.query_addr(), &range_cmd), before_range);
    assert_eq!(query(second.query_addr(), &smooth_cmd), before_smooth);
    let stats = query(second.query_addr(), "STATS");
    assert_eq!(stat(&stats, "wal.replay.applied") as usize, total);
    assert_eq!(stat(&stats, "wal.replay.damaged"), 0);
    assert_eq!(stat(&stats, "store.points") as usize, total);
    second.shutdown();
    std::fs::remove_dir_all(&wal_dir).ok();
}

/// The distinct WAL generations currently on disk, parsed from the
/// `wal-{shard}-{generation}.log` file names.
fn wal_generations(dir: &std::path::Path) -> std::collections::BTreeSet<u64> {
    let mut gens = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(dir).expect("read wal dir") {
        let name = entry.expect("wal dir entry").file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name.strip_prefix("wal-").and_then(|r| r.strip_suffix(".log")) {
            if let Some((_, gen)) = rest.split_once('-') {
                gens.insert(gen.parse().expect("generation number"));
            }
        }
    }
    gens
}

/// With a WAL and a checkpoint chain configured, `SNAPSHOT <name>` is a
/// real checkpoint, not just an export: it advances the on-disk chain,
/// discards the covered WAL generations, and still writes the named
/// standalone snapshot. A restart from the chain plus the surviving log
/// tail serves byte-identical responses.
#[test]
fn snapshot_with_a_chain_checkpoints_and_truncates_the_wal() {
    const HOSTS: usize = 2;
    const POINTS: i64 = 80;
    let base = std::env::temp_dir().join(format!("asap_snapck_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    let chain_dir = base.join("chain");
    let export_dir = base.join("exports");
    std::fs::create_dir_all(&export_dir).unwrap();
    let config = || ServerConfig {
        ingest: IngestConfig {
            lateness: Some(LATENESS),
            ..IngestConfig::default()
        },
        wal: Some(WalConfig {
            dir: wal_dir.clone(),
            fsync: FsyncPolicy::EveryN(8),
        }),
        checkpoint: Some(CheckpointConfig {
            dir: chain_dir.clone(),
            // An idle schedule: this test drives checkpoints through
            // SNAPSHOT and the drain, not the background thread.
            schedule: Schedule::every(Duration::from_secs(3600)),
            seed: 1,
            chain_depth: 4,
        }),
        snapshot_dir: Some(export_dir.clone()),
        ..ServerConfig::default()
    };

    let first =
        Server::start(ShardedDb::with_config(ShardedConfig::new(3, 16)), config()).unwrap();
    let doc = shuffle_within_lateness(&sorted_doc(HOSTS, POINTS)).join("\n") + "\n";
    let report = ingest_doc(first.ingest_addr(), &doc);
    assert!(report.contains("clean=true"), "{report}");

    let gens_before = wal_generations(&wal_dir);
    assert!(!gens_before.is_empty());
    assert_eq!(query(first.query_addr(), "SNAPSHOT export1"), "OK snapshot export1\n");

    // The checkpoint rotated past every pre-snapshot generation and
    // discarded them: only the fresh live generation remains on disk.
    let gens_after = wal_generations(&wal_dir);
    assert_eq!(gens_after.len(), 1, "covered generations survive: {gens_after:?}");
    assert!(gens_after.iter().min() > gens_before.iter().max());

    let stats = query(first.query_addr(), "STATS");
    assert_eq!(stat(&stats, "checkpoint.enabled"), 1);
    assert_eq!(stat(&stats, "checkpoint.runs"), 1);
    assert_eq!(stat(&stats, "checkpoint.errors"), 0);
    assert!(stat(&stats, "checkpoint.chain_links") >= 1);
    assert!(stat(&stats, "checkpoint.bytes_written") > 0);
    assert_eq!(
        stat(&stats, "checkpoint.wal_files_discarded"),
        3,
        "one covered file per shard"
    );

    // The named export rides along as a complete standalone snapshot of
    // the checkpointed moment.
    let range_cmd = format!("RANGE cpu.usage 0 {POINTS}");
    let live = query(first.query_addr(), &range_cmd);
    let exported =
        ShardedDb::load(&export_dir.join("export1"), ShardedConfig::new(3, 16)).unwrap();
    let rendered = protocol::render_range(
        &exported
            .query_selector(
                &Selector::metric("cpu.usage").tag_absent(ROLLUP_TAG),
                RangeQuery::raw(0, POINTS),
            )
            .unwrap(),
    );
    assert_eq!(rendered, live, "the export diverges from the served store");

    // Post-snapshot writes land in the surviving log tail and the
    // drain's final chain checkpoint — nothing acknowledged is lost.
    let mut tail = String::new();
    for t in POINTS..POINTS + 20 {
        for h in 0..HOSTS {
            tail.push_str(&format!("cpu,host=h{h} usage={} {t}\n", (t % 5) as f64));
        }
    }
    let report = ingest_doc(first.ingest_addr(), &tail);
    assert!(report.contains("clean=true"), "{report}");
    let full_cmd = format!("RANGE cpu.usage 0 {}", POINTS + 20);
    let expect = query(first.query_addr(), &full_cmd);
    let drained = first.shutdown();
    assert_eq!(drained.checkpoint.runs, 2, "the drain takes a final checkpoint");
    assert_eq!(drained.checkpoint.last_error, None);

    // Boot like the binary: fold the chain directory, replay the tail.
    let db = ShardedDb::load(&chain_dir, ShardedConfig::new(2, 16)).unwrap();
    let second = Server::start(db, config()).unwrap();
    assert_eq!(
        second.wal_replay_report().applied,
        0,
        "the final checkpoint left nothing to replay"
    );
    assert_eq!(query(second.query_addr(), &full_cmd), expect);
    second.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// The ISSUE's steady-state acceptance criterion: with background
/// checkpoints enabled, the on-disk WAL never accumulates with uptime —
/// every pass discards the generations it covers, so distinct
/// generations stay within chain depth + 1 across rounds of ingest, the
/// chain itself re-bases at the configured depth, and a restart folds
/// the chain back into byte-identical query responses.
#[test]
fn background_checkpoints_bound_the_wal_at_steady_state() {
    const DEPTH: usize = 2;
    let base = std::env::temp_dir().join(format!("asap_ckschd_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let wal_dir = base.join("wal");
    let chain_dir = base.join("chain");
    let config = || ServerConfig {
        wal: Some(WalConfig {
            dir: wal_dir.clone(),
            fsync: FsyncPolicy::EveryN(4),
        }),
        checkpoint: Some(CheckpointConfig {
            dir: chain_dir.clone(),
            schedule: Schedule::every(Duration::from_millis(40))
                .with_jitter(Duration::from_millis(10)),
            seed: 7,
            chain_depth: DEPTH,
        }),
        ..ServerConfig::default()
    };

    let first =
        Server::start(ShardedDb::with_config(ShardedConfig::new(2, 16)), config()).unwrap();
    let mut expected_points = 0usize;
    for round in 0..5i64 {
        let mut lines = String::new();
        for t in round * 20..(round + 1) * 20 {
            for h in 0..2 {
                lines.push_str(&format!(
                    "cpu,host=h{h} usage={} {t}\n",
                    (t % 9) as f64 + h as f64
                ));
            }
        }
        expected_points += 40;
        let report = ingest_doc(first.ingest_addr(), &lines);
        assert!(report.contains("clean=true"), "{report}");
        // Let at least one more pass cover this round before the next,
        // so checkpoints see genuine incremental write activity.
        wait_for_stats(first.query_addr(), "another checkpoint pass", |stats| {
            stat(stats, "checkpoint.runs") > round
        });
        let gens = wal_generations(&wal_dir);
        assert!(
            gens.len() <= DEPTH + 1,
            "round {round}: the WAL grew with uptime: {gens:?}"
        );
    }
    let stats = wait_for_stats(first.query_addr(), "a re-base", |stats| {
        stat(stats, "checkpoint.rebases") >= 1
    });
    assert_eq!(stat(&stats, "checkpoint.errors"), 0);
    assert!(stat(&stats, "checkpoint.chain_links") as usize <= DEPTH + 1);
    assert_eq!(stat(&stats, "store.points") as usize, expected_points);

    let range_cmd = "RANGE cpu.usage 0 100";
    let expect = query(first.query_addr(), range_cmd);
    let drained = first.shutdown();
    assert_eq!(drained.checkpoint.last_error, None);
    assert!(drained.checkpoint.runs >= 5);

    // The on-disk chain is bounded too: at most one base plus DEPTH
    // delta links survive the re-bases.
    let links = std::fs::read_dir(&chain_dir)
        .unwrap()
        .filter(|e| {
            let name = e.as_ref().unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("base-") || name.starts_with("delta-")
        })
        .count();
    assert!(links <= DEPTH + 1, "chain holds {links} link files");

    // Boot like the binary: fold the chain, replay the (empty) tail.
    let db = ShardedDb::load(&chain_dir, ShardedConfig::new(3, 16)).unwrap();
    let second = Server::start(db, config()).unwrap();
    assert_eq!(second.wal_replay_report().applied, 0);
    assert_eq!(query(second.query_addr(), range_cmd), expect);
    second.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// Rollup series (tagged [`ROLLUP_TAG`] by the compactor) are
/// infrastructure: `RANGE`/`SMOOTH` selectors that don't mention the
/// tag — bare `*`, a metric name, or a tag filter — must not see them,
/// while a selector that asks for the tag explicitly still can.
#[test]
fn selectors_hide_rollup_series_unless_asked() {
    let db = ShardedDb::with_config(ShardedConfig::new(2, 16));
    let raw = SeriesKey::metric("cpu").with_tag("host", "h1");
    let rollup = raw.clone().with_tag(ROLLUP_TAG, "10");
    for t in 0..60i64 {
        db.write(&raw, DataPoint::new(t, (t % 7) as f64)).unwrap();
        if t % 10 == 0 {
            db.write(&rollup, DataPoint::new(t, 3.0)).unwrap();
        }
    }
    let server = Server::start(db.clone(), ServerConfig::default()).unwrap();
    let addr = server.query_addr();

    // Expected responses, rendered through the same protocol helpers
    // from explicit selectors against the live store.
    let raw_only = |sel: Selector| {
        protocol::render_range(&db.query_selector(&sel, RangeQuery::raw(0, 60)).unwrap())
    };
    for (cmd, sel) in [
        ("RANGE * 0 60", Selector::any().tag_absent(ROLLUP_TAG)),
        ("RANGE cpu 0 60", Selector::metric("cpu").tag_absent(ROLLUP_TAG)),
        (
            "RANGE cpu{host=h1} 0 60",
            Selector::metric("cpu").tag_eq("host", "h1").tag_absent(ROLLUP_TAG),
        ),
        (
            "RANGE cpu{__rollup__=10} 0 60",
            Selector::metric("cpu").tag_eq(ROLLUP_TAG, "10"),
        ),
        (
            "RANGE cpu{__rollup__=*} 0 60",
            Selector::metric("cpu").tag_present(ROLLUP_TAG),
        ),
    ] {
        let response = query(addr, cmd);
        assert_eq!(response, raw_only(sel), "`{cmd}` leaked or lost series");
        let hidden = cmd.contains("__rollup__") == response.contains("__rollup__");
        assert!(hidden, "`{cmd}` rollup visibility is wrong:\n{response}");
    }

    // SMOOTH applies the same confinement: identical frames to smoothing
    // the raw-only selector directly.
    let asap = Asap::builder().resolution(30).build();
    let frames = smooth::smooth_query_selector(
        &db,
        &Selector::metric("cpu").tag_absent(ROLLUP_TAG),
        &asap,
        0,
        60,
        1,
    )
    .unwrap();
    assert_eq!(
        query(addr, "SMOOTH cpu 0 60 1 30"),
        protocol::render_smooth(&frames)
    );
    assert!(!query(addr, "SMOOTH cpu 0 60 1 30").contains("__rollup__"));
    server.shutdown();
}
