//! Event-core walls: the C10K-style concurrency claim (≥ 1024
//! mostly-idle connections served byte-identically to the serial
//! oracle), `BATCH` framing end-to-end (framed ≡ plain ≡ oracle, frame
//! boundaries crossing line boundaries, one-byte trickle), cap
//! refusals on both ports, and the stalled-reader drain regressions —
//! on both cores, since the threaded write-deadline fix is pinned here
//! too.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use asap_server::{protocol, CoreMode, Server, ServerConfig};
use asap_tsdb::{
    line_protocol, DataPoint, IngestConfig, RangeQuery, Selector, SeriesKey, ShardedConfig,
    ShardedDb, Tsdb, TsdbConfig,
};

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

/// A small telemetry document (same shape as the integration suite's).
fn doc(hosts: usize, points: i64) -> String {
    let mut lines = String::new();
    for t in 0..points {
        for h in 0..hosts {
            let v = (std::f64::consts::TAU * t as f64 / 48.0).sin() + h as f64;
            lines.push_str(&format!("cpu,host=h{h} usage={v} {t}\n"));
        }
    }
    lines
}

/// Sends one command line on a fresh query connection and reads the
/// complete response.
fn query(addr: SocketAddr, command: &str) -> String {
    let conn = TcpStream::connect(addr).expect("connect query");
    (&conn)
        .write_all(format!("{command}\n").as_bytes())
        .expect("send command");
    read_response(&mut BufReader::new(&conn))
}

/// Reads one response (single line, or `OK …`-to-`END` block) from an
/// established query connection.
fn read_response(reader: &mut impl BufRead) -> String {
    let mut response = String::new();
    let mut first = String::new();
    reader.read_line(&mut first).expect("read response head");
    response.push_str(&first);
    let multi_line = first
        .strip_prefix("OK ")
        .is_some_and(|rest| rest.trim() == "stats" || rest.trim().parse::<usize>().is_ok());
    if multi_line {
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read response body") == 0 {
                panic!("response ended before END: {response}");
            }
            response.push_str(&line);
            if line.trim() == "END" {
                break;
            }
        }
    }
    response
}

/// Extracts one counter from a `STATS` response.
fn stat(stats: &str, key: &str) -> i64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("STATS lacks `{key}`:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

/// The C10K wall: one event-loop worker pool carries 1024 concurrent,
/// mostly-idle query connections — far past the old
/// thread-per-connection cap — and every `RANGE`/`SMOOTH` response is
/// byte-identical to the serial single-shard oracle rendered through
/// the same protocol.
#[test]
fn event_core_serves_1024_mostly_idle_connections_byte_identically() {
    const CONNECTIONS: usize = 1024;
    const POINTS: i64 = 200;

    let telemetry = doc(1, POINTS);
    let db = ShardedDb::with_config(ShardedConfig::new(4, 64));
    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 64 });
    line_protocol::ingest(&oracle, &telemetry, 0).unwrap();
    let seeded =
        asap_tsdb::pipeline_ingest(&db, &telemetry, 0, &IngestConfig::default()).unwrap();
    assert_eq!(seeded.points, POINTS as usize);

    let server = Server::start(
        db,
        ServerConfig {
            core: CoreMode::Event,
            event_workers: 2,
            max_query_connections: CONNECTIONS + 8,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.query_addr();

    // Line protocol keys series as `measurement.field`.
    let range_cmd = format!("RANGE cpu.usage 0 {POINTS}");
    let expected_range = protocol::render_range(
        &oracle
            .query_selector(&Selector::metric("cpu.usage"), RangeQuery::raw(0, POINTS))
            .unwrap(),
    );
    let smooth_cmd = format!("SMOOTH cpu.usage 0 {POINTS} 1 50");
    let asap = asap_core::Asap::builder().resolution(50).build();
    let expected_smooth = protocol::render_smooth(
        &asap_tsdb::smooth::smooth_query_selector(
            &oracle,
            &Selector::metric("cpu.usage"),
            &asap,
            0,
            POINTS,
            1,
        )
        .unwrap(),
    );
    // Guard against a vacuous wall: both expectations must carry real
    // payloads, not an empty `OK 0` matching an empty oracle.
    assert!(
        expected_range.contains("SERIES cpu.usage") && expected_range.len() > 1_000,
        "oracle RANGE expectation is trivial:\n{expected_range}"
    );
    assert!(
        expected_smooth.contains("SERIES cpu.usage"),
        "oracle SMOOTH expectation is trivial:\n{expected_smooth}"
    );

    // Open every connection before asking anything: the pool must hold
    // all 1024 sockets at once, nearly all idle at any instant.
    let conns: Vec<TcpStream> = (0..CONNECTIONS)
        .map(|i| {
            TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connection {i} refused: {e}"))
        })
        .collect();

    // Liveness across the whole registry: every connection answers (a
    // `SMOOTH` for every 16th, `RANGE` for the rest), all in flight
    // together before any response is read.
    for (i, conn) in conns.iter().enumerate() {
        let cmd = if i % 16 == 0 { &smooth_cmd } else { &range_cmd };
        (&*conn)
            .write_all(format!("{cmd}\n").as_bytes())
            .unwrap_or_else(|e| panic!("connection {i}: send failed: {e}"));
    }
    for (i, conn) in conns.iter().enumerate() {
        let response = read_response(&mut BufReader::new(conn));
        let expected = if i % 16 == 0 {
            &expected_smooth
        } else {
            &expected_range
        };
        assert_eq!(&response, expected, "connection {i} diverged from the oracle");
    }

    let stats = query(addr, "STATS");
    assert!(
        stat(&stats, "query.active_connections") >= CONNECTIONS as i64,
        "registry did not hold the fleet:\n{stats}"
    );
    assert_eq!(stat(&stats, "query.rejected_connections"), 0);

    drop(conns);
    let report = server.shutdown();
    assert_eq!(report.query_rejected_connections, 0);
}

/// `BATCH`-framed ingest is semantically invisible: the same document
/// sent through length-prefixed frames — with frame boundaries cutting
/// lines in half, an empty frame, and plain bytes interleaved — lands
/// in the store byte-identically to the plain serial oracle.
#[test]
fn batch_framed_ingest_matches_the_plain_oracle() {
    const HOSTS: usize = 3;
    const POINTS: i64 = 150;
    let telemetry = doc(HOSTS, POINTS);

    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(3, 32)),
        ServerConfig {
            core: CoreMode::Event,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A plain prefix, an empty frame, then the rest of the byte stream
    // in back-to-back frames: 997 is coprime to every line length
    // here, so nearly all frame boundaries fall mid-line and every
    // header after the first follows a mid-line payload.
    let split = telemetry.find('\n').unwrap() + 1;
    let (plain, rest) = telemetry.as_bytes().split_at(split);
    let mut framed = plain.to_vec();
    framed.extend_from_slice(b"BATCH 0\n");
    for chunk in rest.chunks(997) {
        framed.extend_from_slice(format!("BATCH {}\n", chunk.len()).as_bytes());
        framed.extend_from_slice(chunk);
    }

    let mut conn = TcpStream::connect(server.ingest_addr()).unwrap();
    for piece in framed.chunks(4096) {
        conn.write_all(piece).unwrap();
    }
    conn.shutdown(Shutdown::Write).unwrap();
    let mut report = String::new();
    conn.read_to_string(&mut report).unwrap();
    assert!(report.contains("clean=true"), "{report}");
    assert!(
        report.contains(&format!("points={}", HOSTS * POINTS as usize)),
        "{report}"
    );
    assert!(report.contains("parse_failures=0"), "{report}");

    let oracle = Tsdb::with_config(TsdbConfig { block_capacity: 32 });
    line_protocol::ingest(&oracle, &telemetry, 0).unwrap();
    assert_eq!(
        server.db().query_selector(&Selector::any(), full()).unwrap(),
        oracle.query_selector(&Selector::any(), full()).unwrap(),
        "framed ingest diverged from the plain oracle"
    );
    server.shutdown();
}

/// The slowest possible client: one byte per poll interval, with a
/// `BATCH` frame whose payload ends mid-line so the line must continue
/// seamlessly into the plain stream. Every framing and accumulator
/// state is hit with maximal fragmentation.
#[test]
fn trickled_bytes_across_a_batch_frame_boundary_ingest_exactly() {
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 16)),
        ServerConfig {
            core: CoreMode::Event,
            poll_interval: Duration::from_millis(3),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // The 14-byte payload ends mid-line after `m v=3`: the line's tail
    // (`0 30\n`) arrives as plain bytes after the frame and must splice
    // into `m v=30 30`.
    let mut stream = Vec::new();
    stream.extend_from_slice(b"m v=1 1\n");
    stream.extend_from_slice(b"BATCH 14\n");
    stream.extend_from_slice(b"m v=2 2\nm v=3");
    stream.extend_from_slice(b"0 30\n");
    stream.extend_from_slice(b"m v=4 44\n");

    let mut conn = TcpStream::connect(server.ingest_addr()).unwrap();
    for &byte in &stream {
        conn.write_all(&[byte]).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    conn.shutdown(Shutdown::Write).unwrap();
    let mut report = String::new();
    conn.read_to_string(&mut report).unwrap();
    assert!(report.contains("clean=true"), "{report}");
    assert!(report.contains("points=4"), "{report}");
    assert!(report.contains("parse_failures=0"), "{report}");

    assert_eq!(
        server
            .db()
            .query(&SeriesKey::metric("m.v"), full())
            .unwrap(),
        vec![
            DataPoint::new(1, 1.0),
            DataPoint::new(2, 2.0),
            DataPoint::new(30, 30.0),
            DataPoint::new(44, 4.0),
        ],
        "trickled framed stream must land exactly"
    );
    server.shutdown();
}

/// Over-cap refusals on the event core: both ports refuse with one
/// `ERR` line, and — unlike the old core, which lost query-port
/// refusals — each port has its own visible counter.
#[test]
fn cap_refusals_are_counted_per_port() {
    let server = Server::start(
        ShardedDb::new(),
        ServerConfig {
            core: CoreMode::Event,
            max_ingest_connections: 1,
            max_query_connections: 1,
            poll_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Occupy the single slot of each port.
    let held_ingest = TcpStream::connect(server.ingest_addr()).unwrap();
    (&held_ingest).write_all(b"m v=1 1\n").unwrap();
    let held_query = TcpStream::connect(server.query_addr()).unwrap();
    (&held_query).write_all(b"HEALTH\n").unwrap();
    let mut reader = BufReader::new(&held_query);
    assert!(read_response(&mut reader).starts_with("OK healthy"));

    // Excess connections on each port get one ERR line.
    for addr in [server.ingest_addr(), server.query_addr()] {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let refused = TcpStream::connect(addr).unwrap();
            let mut line = String::new();
            BufReader::new(&refused).read_line(&mut line).unwrap();
            if line.starts_with("ERR connection limit reached") {
                break;
            }
            // The held connection may still be in the dispatcher's
            // queue; retry until the slot is visibly occupied.
            assert!(
                Instant::now() < deadline,
                "{addr}: refusal never arrived; last answer: {line:?}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Both refusals are visible, separately, through the held query
    // connection (the only one the cap admits).
    (&held_query).write_all(b"STATS\n").unwrap();
    let stats = read_response(&mut reader);
    assert!(stat(&stats, "ingest.rejected_connections") >= 1, "{stats}");
    assert!(stat(&stats, "query.rejected_connections") >= 1, "{stats}");
    assert_eq!(stat(&stats, "query.active_connections"), 1);

    drop(held_ingest);
    drop(held_query);
    let report = server.shutdown();
    assert!(report.query_rejected_connections >= 1);
    assert!(report.ingest.rejected_connections >= 1);
}

/// Fills a store with enough points that one `RANGE` response dwarfs
/// any socket buffer, asks for it, reads only the first few bytes, and
/// stops — then measures the drain.
fn drain_with_stalled_reader(core: CoreMode, write_deadline: Duration) -> Duration {
    const POINTS: i64 = 300_000;
    let db = ShardedDb::with_config(ShardedConfig::new(1, 4096));
    let key = SeriesKey::metric("flood.v");
    for t in 0..POINTS {
        db.write(&key, DataPoint::new(t, f64::from(t as u32 % 997)))
            .unwrap();
    }
    let server = Server::start(
        db,
        ServerConfig {
            core,
            write_deadline,
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let conn = TcpStream::connect(server.query_addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    (&conn)
        .write_all(format!("RANGE flood.v 0 {POINTS}\n").as_bytes())
        .unwrap();
    // Confirm the (multi-megabyte) response started flowing, then never
    // read again: the server's write path is now wedged against a full
    // receive window.
    let mut head = [0u8; 16];
    (&conn).read_exact(&mut head).unwrap();
    assert_eq!(&head[..3], b"OK ", "response head: {head:?}");
    assert_ne!(
        &head[..5],
        b"OK 0\n",
        "the flood series matched nothing — the reader has nothing to stall on"
    );

    let started = Instant::now();
    let report = server.shutdown();
    let elapsed = started.elapsed();
    drop(conn);
    assert_eq!(report.ingest.points, 0);
    elapsed
}

/// Event-core drain with a stalled reader is bounded by the poll
/// interval, not the write deadline: with a 60s deadline the drain
/// must still finish in seconds.
#[test]
fn event_drain_is_bounded_by_the_poll_interval_not_the_client() {
    let elapsed = drain_with_stalled_reader(CoreMode::Event, Duration::from_secs(60));
    assert!(
        elapsed < Duration::from_secs(5),
        "drain took {elapsed:?} with a stalled reader"
    );
}

/// The legacy-core regression (the original bug): without a write
/// deadline, `write_all` to a peer with a full receive window blocks
/// its handler forever and `Server::drain` — which joins every
/// handler — hangs. With the deadline the drain completes.
#[test]
fn threaded_drain_completes_despite_a_stalled_reader() {
    let elapsed = drain_with_stalled_reader(CoreMode::Threaded, Duration::from_millis(500));
    assert!(
        elapsed < Duration::from_secs(10),
        "drain took {elapsed:?}: the write deadline did not unwedge the handler"
    );
}
