//! The subscription wall: `SUBSCRIBE` push streams pinned to the
//! poll-the-store serial oracle under shuffled-lateness concurrent
//! ingest, the stalled-subscriber extension of the stalled-reader wall,
//! and the streaming-lifecycle edges (subscribing before a series
//! exists, series created after the subscription, `UNSUBSCRIBE` racing
//! a frame push, drain-time reorder flush feeding final frames) — on
//! both I/O cores, which must be observationally identical.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use asap_core::{StreamingAsap, StreamingConfig};
use asap_server::{protocol, CoreMode, Server, ServerConfig};
use asap_tsdb::{IngestConfig, RangeQuery, Selector, ShardedConfig, ShardedDb};

use std::collections::BTreeMap;

fn full() -> RangeQuery {
    RangeQuery::raw(i64::MIN + 1, i64::MAX)
}

/// The subscription template every test server uses: pane size 10
/// (400/40), warm after 4 panes = 40 points per series.
const SUB_WINDOW: usize = 400;
const SUB_RESOLUTION: usize = 40;

fn server(core: CoreMode, lateness: Option<i64>) -> Server {
    Server::start(
        ShardedDb::with_config(ShardedConfig::new(4, 64)),
        ServerConfig {
            core,
            poll_interval: Duration::from_millis(5),
            subscribe_window: SUB_WINDOW,
            subscribe_resolution: SUB_RESOLUTION,
            ingest: IngestConfig {
                lateness,
                ..IngestConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// A telemetry document with one series per host, points in timestamp
/// order.
fn doc(hosts: &[usize], points: i64) -> String {
    let mut lines = String::new();
    for t in 0..points {
        for &h in hosts {
            let v = (std::f64::consts::TAU * t as f64 / 48.0).sin() + h as f64
                + ((t as u64 * 2654435761 + h as u64) % 100) as f64 / 100.0;
            lines.push_str(&format!("cpu,host=h{h} usage={v} {t}\n"));
        }
    }
    lines
}

/// Bounded-displacement shuffle: reversing disjoint 16-line blocks
/// displaces no line more than 15 positions — safely inside the
/// configured lateness, so the reorder buffer restores exact order and
/// nothing is dropped late.
fn block_shuffle(doc: &str) -> String {
    let mut lines: Vec<&str> = doc.lines().collect();
    for block in lines.chunks_mut(16) {
        block.reverse();
    }
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Streams a document over the ingest port and returns the report line.
fn ingest(addr: SocketAddr, doc: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect ingest");
    conn.write_all(doc.as_bytes()).expect("send document");
    conn.shutdown(Shutdown::Write).unwrap();
    let mut report = String::new();
    conn.read_to_string(&mut report).expect("read report");
    report
}

/// Sends one command line on a fresh query connection and reads the
/// complete response.
fn query(addr: SocketAddr, command: &str) -> String {
    let conn = TcpStream::connect(addr).expect("connect query");
    (&conn)
        .write_all(format!("{command}\n").as_bytes())
        .expect("send command");
    read_response(&mut BufReader::new(&conn))
}

/// Reads one response (single line, or `OK …`-to-`END` block) from an
/// established query connection.
fn read_response(reader: &mut impl BufRead) -> String {
    let mut response = String::new();
    let mut first = String::new();
    reader.read_line(&mut first).expect("read response head");
    response.push_str(&first);
    let multi_line = first
        .strip_prefix("OK ")
        .is_some_and(|rest| rest.trim() == "stats" || rest.trim().parse::<usize>().is_ok());
    if multi_line {
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read response body") == 0 {
                panic!("response ended before END: {response}");
            }
            response.push_str(&line);
            if line.trim() == "END" {
                break;
            }
        }
    }
    response
}

/// Extracts one counter from a `STATS` response.
fn stat(stats: &str, key: &str) -> i64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("STATS lacks `{key}`:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

/// Replays each stored series (timestamp order — identical to apply
/// order when displacement stays inside the lateness bound) through a
/// fresh `StreamingAsap` with the server's template: the serial oracle
/// of what a subscription at `every` must have pushed.
fn oracle_frames(server: &Server, every: usize) -> BTreeMap<String, Vec<String>> {
    let mut expected = BTreeMap::new();
    for (key, points) in server
        .db()
        .query_selector(&Selector::any(), full())
        .unwrap()
    {
        let mut op = StreamingAsap::new(StreamingConfig::new(SUB_WINDOW, SUB_RESOLUTION, every));
        let mut frames = Vec::new();
        for point in points {
            if let Some(frame) = op.push(point.value).unwrap() {
                frames.push(protocol::render_frame(&key, &frame));
            }
        }
        expected.insert(key.to_string(), frames);
    }
    expected
}

/// The headline property wall: a standing `SUBSCRIBE`, registered
/// before any matching series exists, observes — live, over TCP, under
/// two concurrent ingest connections sending shuffled-lateness
/// documents — a frame stream byte-identical to replaying the stored
/// points through the same streaming template serially. Frames ride the
/// ingest apply path post-reorder, so subscription order ≡ store order.
fn push_stream_matches_poll_oracle(core: CoreMode) {
    const POINTS: i64 = 500;
    const EVERY: usize = 50;
    let server = server(core, Some(64));

    // Subscribe before a single point exists: the lifecycle edge where
    // every matching series is created later.
    let sub = TcpStream::connect(server.query_addr()).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    (&sub)
        .write_all(format!("SUBSCRIBE cpu.usage EVERY {EVERY}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(&sub);
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(
        ack.starts_with("OK subscribed 1 every=50 alert=none"),
        "{ack}"
    );

    // Two concurrent ingest clients with partitioned series, each
    // sending a bounded-displacement shuffle of its document — late
    // arrivals exercise the reorder buffers while per-series apply
    // order stays well defined.
    let ingest_addr = server.ingest_addr();
    let clients: Vec<_> = [vec![0usize, 1], vec![2, 3]]
        .into_iter()
        .map(|hosts| {
            let shuffled = block_shuffle(&doc(&hosts, POINTS));
            std::thread::spawn(move || ingest(ingest_addr, &shuffled))
        })
        .collect();
    for client in clients {
        let report = client.join().unwrap();
        assert!(report.contains("clean=true"), "{report}");
        assert!(report.contains("dropped_late=0"), "{report}");
    }

    // Clean EOFs flushed the reorder buffers, so the store and the
    // fanout both saw every point; the final frames are already pushed.
    let stats = query(server.query_addr(), "STATS");
    assert_eq!(stat(&stats, "subscriptions.points_seen"), 4 * POINTS);
    assert_eq!(stat(&stats, "subscriptions.series_tracked"), 4);

    let expected = oracle_frames(&server, EVERY);
    assert_eq!(expected.len(), 4, "all four series must exist");
    let total: usize = expected.values().map(Vec::len).sum();
    for (key, frames) in &expected {
        assert!(frames.len() >= 5, "oracle is trivial for {key}");
    }

    // Collect the pushed stream. Interleaving across series is
    // scheduler-dependent; per series the stream must be byte-identical
    // to the oracle.
    let mut pushed: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for _ in 0..total {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read push line") > 0,
            "stream ended early: got {} of {total} frames",
            pushed.values().map(Vec::len).sum::<usize>()
        );
        let key = line
            .strip_prefix("FRAME ")
            .unwrap_or_else(|| panic!("not a frame line: {line}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_owned();
        pushed.entry(key).or_default().push(line);
    }
    for (key, frames) in &expected {
        assert_eq!(
            pushed.get(key.as_str()),
            Some(frames),
            "pushed stream diverged from the poll oracle for {key}"
        );
    }

    // UNSUBSCRIBE on the live connection is acknowledged and tears the
    // state down.
    (&sub).write_all(b"UNSUBSCRIBE\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "OK unsubscribed 1\n");
    let stats = query(server.query_addr(), "STATS");
    assert_eq!(stat(&stats, "subscriptions.active"), 0);
    assert_eq!(stat(&stats, "subscriptions.series_tracked"), 0);
    assert_eq!(stat(&stats, "subscriptions.frames_lagged"), 0);

    drop(reader);
    drop(sub);
    server.shutdown();
}

#[test]
fn event_push_stream_matches_the_poll_oracle() {
    push_stream_matches_poll_oracle(CoreMode::Event);
}

#[test]
fn threaded_push_stream_matches_the_poll_oracle() {
    push_stream_matches_poll_oracle(CoreMode::Threaded);
}

/// A subscriber that stops reading mid-stream must be lag-dropped or
/// disconnected within the write deadline — and must never delay
/// ingest or shutdown. The push extension of the stalled-reader wall.
fn stalled_subscriber_never_wedges(core: CoreMode) {
    // ~750 bytes per frame line at one frame per point: tens of
    // megabytes of push traffic, far past what kernel socket buffers
    // can absorb on behalf of a reader that never reads.
    const POINTS: i64 = 60_000;
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 64)),
        ServerConfig {
            core,
            poll_interval: Duration::from_millis(10),
            write_deadline: Duration::from_millis(500),
            subscribe_window: SUB_WINDOW,
            subscribe_resolution: SUB_RESOLUTION,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Subscribe at the highest cadence, then never read a single byte —
    // not even the acknowledgment.
    let sub = TcpStream::connect(server.query_addr()).unwrap();
    (&sub).write_all(b"SUBSCRIBE flood.v EVERY 1\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // Flood: one frame per point once warm, into a subscriber whose
    // socket fills, whose output buffer hits its high-water mark, and
    // whose outbox then lag-drops. The report must come back clean —
    // ingest never waits on the subscriber.
    let mut flood = String::new();
    for t in 0..POINTS {
        flood.push_str(&format!("flood v={} {t}\n", (t % 97) as f64));
    }
    let started = Instant::now();
    let report = ingest(server.ingest_addr(), &flood);
    let ingest_elapsed = started.elapsed();
    assert!(report.contains("clean=true"), "{report}");
    assert!(report.contains(&format!("points={POINTS}")), "{report}");
    assert!(
        ingest_elapsed < Duration::from_secs(30),
        "ingest took {ingest_elapsed:?} against a stalled subscriber"
    );

    // The stall resolved against the subscriber, not the server: either
    // its outbox overflowed (lag) or the write deadline already
    // disconnected it (tearing down the subscription).
    let stats = query(server.query_addr(), "STATS");
    let lagged = stat(&stats, "subscriptions.frames_lagged");
    let active = stat(&stats, "subscriptions.active");
    assert!(
        lagged > 0 || active == 0,
        "no lag and the subscription still stands:\n{stats}"
    );

    let started = Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    let bound = match core {
        CoreMode::Event => Duration::from_secs(5),
        CoreMode::Threaded => Duration::from_secs(10),
    };
    assert!(
        elapsed < bound,
        "drain took {elapsed:?} with a stalled subscriber"
    );
    drop(sub);
}

#[test]
fn event_stalled_subscriber_never_wedges_ingest_or_drain() {
    stalled_subscriber_never_wedges(CoreMode::Event);
}

#[test]
fn threaded_stalled_subscriber_never_wedges_ingest_or_drain() {
    stalled_subscriber_never_wedges(CoreMode::Threaded);
}

/// A wildcard subscription starts pushing for series that did not exist
/// when it was registered — and for further series created later still.
#[test]
fn wildcard_subscription_tracks_series_created_later() {
    let server = server(CoreMode::Event, None);
    let sub = TcpStream::connect(server.query_addr()).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    (&sub).write_all(b"SUBSCRIBE * EVERY 10\n").unwrap();
    let mut reader = BufReader::new(&sub);
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.starts_with("OK subscribed"), "{ack}");

    let mut first = String::new();
    for t in 0..100 {
        first.push_str(&format!("alpha v={} {t}\n", t as f64));
    }
    assert!(ingest(server.ingest_addr(), &first).contains("clean=true"));
    let mut second = String::new();
    for t in 0..100 {
        second.push_str(&format!("beta v={} {t}\n", (t * 2) as f64));
    }
    assert!(ingest(server.ingest_addr(), &second).contains("clean=true"));

    // Warm at 40, refresh every 10 → 7 frames per 100-point series.
    let mut seen = BTreeMap::new();
    for _ in 0..14 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "stream ended");
        let key = line
            .strip_prefix("FRAME ")
            .unwrap_or_else(|| panic!("not a frame: {line}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_owned();
        *seen.entry(key).or_insert(0usize) += 1;
    }
    assert_eq!(seen.get("alpha.v"), Some(&7), "{seen:?}");
    assert_eq!(seen.get("beta.v"), Some(&7), "{seen:?}");
    server.shutdown();
}

/// `UNSUBSCRIBE` racing a concurrent frame push: the acknowledgment
/// arrives (interleaved with in-flight frames), the registry state
/// drops to zero, ingest completes clean, and shutdown stays prompt.
#[test]
fn unsubscribe_races_a_concurrent_frame_push() {
    let server = server(CoreMode::Event, None);
    let sub = TcpStream::connect(server.query_addr()).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    (&sub).write_all(b"SUBSCRIBE * EVERY 1\n").unwrap();
    let mut reader = BufReader::new(&sub);
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.starts_with("OK subscribed"), "{ack}");

    // Flood in the background while the unsubscribe goes out mid-push.
    let ingest_addr = server.ingest_addr();
    let flood = std::thread::spawn(move || {
        let mut doc = String::new();
        for t in 0..5_000i64 {
            doc.push_str(&format!("race v={} {t}\n", (t % 31) as f64));
        }
        ingest(ingest_addr, &doc)
    });
    // Wait for the stream to visibly start, then cancel under fire.
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    assert!(line.starts_with("FRAME "), "{line}");
    (&sub).write_all(b"UNSUBSCRIBE\n").unwrap();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection ended before the UNSUBSCRIBE acknowledgment"
        );
        if line.starts_with("FRAME ") {
            continue; // frames already in flight may precede the ack
        }
        assert_eq!(line, "OK unsubscribed 1\n");
        break;
    }
    let report = flood.join().unwrap();
    assert!(report.contains("clean=true"), "{report}");
    let stats = query(server.query_addr(), "STATS");
    assert_eq!(stat(&stats, "subscriptions.active"), 0);
    assert_eq!(stat(&stats, "subscriptions.series_tracked"), 0);

    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "drain stalled after an unsubscribe race"
    );
}

/// The drain-ordering edge: points still sitting in the reorder buffer
/// at client EOF are flushed into the store *and* into the subscription
/// runtime before the report line, so the final frames cover the whole
/// stream — `points_seen` equals the stored point count, and the frame
/// stream equals the full-series oracle.
#[test]
fn clean_eof_flushes_the_reorder_tail_into_final_frames() {
    const POINTS: i64 = 300;
    const EVERY: usize = 20;
    let server = server(CoreMode::Event, Some(64));
    let sub = TcpStream::connect(server.query_addr()).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    (&sub)
        .write_all(format!("SUBSCRIBE tail.v EVERY {EVERY}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(&sub);
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.starts_with("OK subscribed"), "{ack}");

    let mut doc = String::new();
    for t in 0..POINTS {
        doc.push_str(&format!("tail v={} {t}\n", (t as f64 / 7.0).sin()));
    }
    // The shuffle leaves a reorder tail pending at EOF; `finish()` must
    // flush it through the hook before reporting.
    let report = ingest(server.ingest_addr(), &block_shuffle(&doc));
    assert!(report.contains("clean=true"), "{report}");
    assert!(report.contains("dropped_late=0"), "{report}");

    let stats = query(server.query_addr(), "STATS");
    assert_eq!(stat(&stats, "subscriptions.points_seen"), POINTS);

    let expected = oracle_frames(&server, EVERY);
    let frames = &expected["tail.v"];
    assert!(frames.len() >= 10, "oracle is trivial ({})", frames.len());
    for want in frames {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "stream ended");
        assert_eq!(&line, want, "pushed frame diverged after the tail flush");
    }
    server.shutdown();
}
