//! End-to-end tests of the observability layer: the `METRICS` verb's
//! Prometheus exposition, the self-scrape round-trip, `__self__`
//! confinement in wildcard selectors, WAL survival of scraped series,
//! and the `HEALTH` degraded path. Following the repo-wide pattern,
//! every expectation is derived from a live oracle — the `STATS`
//! response or the scrape document the server itself returned — never
//! from baked-in values.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use asap_server::{CheckpointConfig, Server, ServerConfig};
use asap_tsdb::{
    FsyncPolicy, IngestConfig, Schedule, ShardedConfig, ShardedDb, WalConfig, SELF_TAG,
};

/// Sends one command line on a fresh query connection and reads the
/// complete response (single line, or an `OK …`-to-`END` block).
fn query(addr: SocketAddr, command: &str) -> String {
    let conn = TcpStream::connect(addr).expect("connect query");
    (&conn)
        .write_all(format!("{command}\n").as_bytes())
        .expect("send command");
    let mut reader = BufReader::new(&conn);
    let mut response = String::new();
    let mut first = String::new();
    reader.read_line(&mut first).expect("read response head");
    response.push_str(&first);
    let multi_line = first.strip_prefix("OK ").is_some_and(|rest| {
        let rest = rest.trim();
        rest == "stats" || rest == "metrics" || rest.parse::<usize>().is_ok()
    });
    if multi_line {
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read response body") == 0 {
                panic!("response ended before END: {response}");
            }
            response.push_str(&line);
            if line.trim() == "END" {
                break;
            }
        }
    }
    response
}

/// Extracts one counter from a `STATS` response.
fn stat(stats: &str, key: &str) -> i64 {
    stats
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("STATS lacks `{key}`:\n{stats}"))
        .trim()
        .parse()
        .unwrap()
}

/// Polls `STATS` until `predicate` holds or the deadline passes.
fn wait_for_stats(addr: SocketAddr, what: &str, predicate: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = query(addr, "STATS");
        if predicate(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last STATS:\n{stats}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Streams telemetry: `hosts` series × `points` samples starting at
/// timestamp `t0` (strictly in-order, so follow-up docs must start
/// past the watermark of the previous one).
fn ingest_doc_from(addr: SocketAddr, hosts: usize, t0: i64, points: i64) -> String {
    let mut doc = String::new();
    for t in t0..t0 + points {
        for h in 0..hosts {
            let v = (std::f64::consts::TAU * t as f64 / 24.0).sin() + h as f64;
            doc.push_str(&format!("cpu,host=h{h} usage={v} {t}\n"));
        }
    }
    let mut conn = TcpStream::connect(addr).expect("connect ingest");
    conn.write_all(doc.as_bytes()).expect("write telemetry");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut report = String::new();
    std::io::Read::read_to_string(&mut conn, &mut report).expect("read report");
    assert!(report.contains("clean=true"), "{report}");
    report
}

fn ingest_doc(addr: SocketAddr, hosts: usize, points: i64) -> String {
    ingest_doc_from(addr, hosts, 0, points)
}

fn default_server() -> Server {
    Server::start(
        ShardedDb::with_config(ShardedConfig::new(4, 64)),
        ServerConfig::default(),
    )
    .unwrap()
}

/// Parses the RANGE response body into `series -> Vec<(ts, value)>`.
fn parse_range(response: &str) -> BTreeMap<String, Vec<(i64, f64)>> {
    let mut out = BTreeMap::new();
    let mut lines = response.lines();
    let head = lines.next().expect("response head");
    assert!(head.starts_with("OK "), "not an OK response: {response}");
    let mut current: Option<&mut Vec<(i64, f64)>> = None;
    for line in lines {
        if line == "END" {
            break;
        }
        if let Some(rest) = line.strip_prefix("SERIES ") {
            let key = rest.split(' ').next().expect("series key").to_owned();
            current = Some(out.entry(key).or_default());
        } else {
            let (ts, v) = line.split_once(' ').expect("point line");
            current
                .as_deref_mut()
                .expect("point before SERIES")
                .push((ts.parse().unwrap(), v.parse().unwrap()));
        }
    }
    out
}

/// The `METRICS` exposition is structurally valid Prometheus text
/// format, and its scalar samples agree exactly with the `STATS`
/// response — both surfaces read the same collector.
#[test]
fn metrics_is_a_valid_exposition_of_the_stats_source() {
    let server = default_server();
    ingest_doc(server.ingest_addr(), 3, 200);
    let addr = server.query_addr();
    query(addr, "RANGE cpu.usage 0 200"); // populate query-phase histograms
    let response = query(addr, "METRICS");
    assert!(response.starts_with("OK metrics\n"), "{response}");
    assert!(response.ends_with("END\n"), "{response}");

    let body: Vec<&str> = response
        .lines()
        .skip(1)
        .take_while(|l| *l != "END")
        .collect();
    assert!(!body.is_empty());

    // Every line is either `# TYPE <name> <kind>` or `<name>[{labels}] <u64>`,
    // and every metric name carries the `asap_` namespace.
    let mut histograms: Vec<String> = Vec::new();
    for line in &body {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(name.starts_with("asap_"), "unnamespaced metric: {line}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE: {line}"
            );
            if kind == "histogram" {
                histograms.push(name.to_owned());
            }
        } else {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(name.starts_with("asap_"), "unnamespaced sample: {line}");
            value.parse::<u64>().unwrap_or_else(|_| {
                panic!("sample value is not an integer: {line}");
            });
        }
    }
    assert!(!histograms.is_empty(), "no histograms in exposition");

    // Histogram invariants: cumulative bucket counts are nondecreasing,
    // the final bucket is `+Inf`, and its count equals `_count`.
    for name in &histograms {
        let buckets: Vec<&str> = body
            .iter()
            .filter(|l| l.starts_with(&format!("{name}_bucket{{")))
            .copied()
            .collect();
        assert!(!buckets.is_empty(), "{name} has no buckets");
        let mut previous = 0u64;
        for bucket in &buckets {
            let count: u64 = bucket.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= previous, "non-cumulative bucket: {bucket}");
            previous = count;
        }
        assert!(
            buckets.last().unwrap().contains("le=\"+Inf\""),
            "{name} lacks the +Inf bucket"
        );
        let count_line = format!("{name}_count");
        let total: u64 = body
            .iter()
            .find_map(|l| l.strip_prefix(&format!("{count_line} ")))
            .unwrap_or_else(|| panic!("{name} lacks _count"))
            .parse()
            .unwrap();
        assert_eq!(previous, total, "+Inf bucket disagrees with _count");
        assert!(
            body.iter().any(|l| l.starts_with(&format!("{name}_sum "))),
            "{name} lacks _sum"
        );
    }

    // One-source-of-truth: STATS scalars equal their METRICS twins.
    // (Both were taken from a live server, so monotone counters could
    // differ between the two requests — compare keys frozen after the
    // ingest connection drained.)
    let stats = query(addr, "STATS");
    for (stats_key, metrics_name) in [
        ("ingest.lines", "asap_ingest_lines"),
        ("ingest.points", "asap_ingest_points"),
        ("ingest.total_connections", "asap_ingest_total_connections"),
        ("store.points", "asap_store_points"),
        ("store.series", "asap_store_series"),
        ("subscriptions.active", "asap_subscriptions_active"),
        ("wal.enabled", "asap_wal_enabled"),
    ] {
        let expected = stat(&stats, stats_key);
        let fresh = query(addr, "METRICS");
        let got: i64 = fresh
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{metrics_name} ")))
            .unwrap_or_else(|| panic!("METRICS lacks `{metrics_name}`:\n{fresh}"))
            .parse()
            .unwrap();
        assert_eq!(got, expected, "{stats_key} diverges from {metrics_name}");
    }
    server.shutdown();
}

/// `scrape_now` returns the exact line-protocol document it ingested;
/// that document is the oracle: every series it names must come back
/// from `RANGE` with the same timestamp and value.
#[test]
fn self_scrape_round_trip_matches_the_scrape_document_oracle() {
    let server = default_server();
    ingest_doc(server.ingest_addr(), 2, 150);
    let addr = server.query_addr();
    query(addr, "SMOOTH cpu.usage 0 150 1 40"); // touch more histograms

    let doc = server.scrape_now().expect("scrape");
    assert!(!doc.is_empty());

    // Expected points per series, derived from the returned document:
    // `name,__self__=1 f1=v1,f2=v2 ts` stores `name.f{__self__=1}`.
    let mut expected: BTreeMap<String, (i64, f64)> = BTreeMap::new();
    let mut scrape_ts = None;
    for line in doc.lines() {
        let mut parts = line.split(' ');
        let head = parts.next().expect("measurement,tags");
        let fields = parts.next().expect("fields");
        let ts: i64 = parts.next().expect("timestamp").parse().unwrap();
        scrape_ts = Some(ts);
        let (measurement, tags) = head.split_once(',').expect("self tag");
        assert_eq!(tags, format!("{SELF_TAG}=1"), "untagged scrape line: {line}");
        for field in fields.split(',') {
            let (name, value) = field.split_once('=').expect("field");
            expected.insert(
                format!("{measurement}.{name}{{{SELF_TAG}=1}}"),
                (ts, value.parse().unwrap()),
            );
        }
    }
    let ts = scrape_ts.expect("at least one scrape line");
    assert!(expected.len() > 20, "suspiciously small scrape: {doc}");

    let stored = parse_range(&query(
        addr,
        &format!("RANGE *{{{SELF_TAG}=1}} {} {}", ts - 1, ts + 1),
    ));
    for (series, (ts, value)) in &expected {
        let points = stored
            .get(series)
            .unwrap_or_else(|| panic!("scraped series `{series}` not stored"));
        assert!(
            points.contains(&(*ts, *value)),
            "series `{series}`: expected ({ts}, {value}), stored {points:?}"
        );
    }
    // And nothing else wears the tag.
    for series in stored.keys() {
        assert!(
            expected.contains_key(series),
            "unexpected {SELF_TAG} series `{series}`"
        );
    }
    server.shutdown();
}

/// Scraped series are infrastructure, like rollups: `*` (and plain
/// metric selectors) exclude them; a selector taking a position on the
/// tag opts in.
#[test]
fn wildcard_selectors_exclude_self_series_unless_opted_in() {
    let server = default_server();
    ingest_doc(server.ingest_addr(), 2, 100);
    let addr = server.query_addr();
    server.scrape_now().expect("scrape");

    let all = parse_range(&query(addr, "RANGE * -100000000000000 100000000000000"));
    assert!(!all.is_empty());
    for series in all.keys() {
        assert!(
            !series.contains(SELF_TAG),
            "`*` leaked the scrape series `{series}`"
        );
    }
    assert!(all.keys().any(|k| k.starts_with("cpu.usage")));

    let opted = parse_range(&query(
        addr,
        &format!("RANGE *{{{SELF_TAG}=*}} -100000000000000 100000000000000"),
    ));
    assert!(!opted.is_empty(), "opt-in selector returned nothing");
    for series in opted.keys() {
        assert!(series.contains(SELF_TAG), "opt-in leaked `{series}`");
    }
    server.shutdown();
}

/// The background scrape feeds the normal pipeline, so its series are
/// WAL-durable, smoothable, and subscribable: a `SUBSCRIBE` on the
/// `__self__` tag receives pushed frames, and a restart on the same
/// WAL directory replays every scraped point.
#[test]
fn background_scrape_series_push_frames_and_survive_a_wal_restart() {
    let wal_dir = std::env::temp_dir().join(format!("asap_obs_wal_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = |scrape: Option<Duration>| ServerConfig {
        wal: Some(WalConfig {
            dir: wal_dir.clone(),
            fsync: FsyncPolicy::EveryN(4),
        }),
        self_scrape: scrape,
        // Tiny streaming windows (pane = 1 point, warm after 4) so the
        // one-point-per-tick scrape cadence produces frames quickly.
        subscribe_window: 8,
        subscribe_resolution: 8,
        subscribe_every: 1,
        ..ServerConfig::default()
    };

    let first = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 32)),
        config(Some(Duration::from_millis(50))),
    )
    .unwrap();
    ingest_doc(first.ingest_addr(), 2, 80);
    let addr = first.query_addr();

    // The registry's own `scrape.runs` counter is scraped too, so STATS
    // proves the background thread is live.
    wait_for_stats(addr, "two background scrapes", |s| stat(s, "scrape.runs") >= 2);

    // A subscription on the self tag gets real pushed frames.
    let sub = TcpStream::connect(addr).expect("connect subscriber");
    (&sub)
        .write_all(format!("SUBSCRIBE asap_ingest_points.value{{{SELF_TAG}=1}} EVERY 1\n").as_bytes())
        .expect("subscribe");
    sub.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    let mut reader = BufReader::new(&sub);
    let mut ack = String::new();
    reader.read_line(&mut ack).expect("read ack");
    assert!(ack.starts_with("OK subscribed"), "{ack}");
    let mut frame = String::new();
    loop {
        frame.clear();
        assert!(
            reader.read_line(&mut frame).expect("read push") > 0,
            "subscription closed before a frame arrived"
        );
        if frame.starts_with("FRAME ") {
            assert!(frame.contains(SELF_TAG), "{frame}");
            break;
        }
    }
    drop(reader);

    // Let a few more ticks land, then note what must survive.
    wait_for_stats(addr, "five background scrapes", |s| stat(s, "scrape.runs") >= 5);
    let survivors = parse_range(&query(
        addr,
        &format!("RANGE *{{{SELF_TAG}=1}} -100000000000000 100000000000000"),
    ));
    assert!(survivors.len() > 20, "scrape stored too few series");
    let report = first.shutdown();
    assert_eq!(report.wal_seal_error, None);

    // Restart (scrape off): replay must rebuild every scraped series.
    let second = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 32)),
        config(None),
    )
    .unwrap();
    let addr = second.query_addr();
    let restored = parse_range(&query(
        addr,
        &format!("RANGE *{{{SELF_TAG}=1}} -100000000000000 100000000000000"),
    ));
    for (series, points) in &survivors {
        let got = restored
            .get(series)
            .unwrap_or_else(|| panic!("series `{series}` lost across restart"));
        assert!(
            got.len() >= points.len(),
            "series `{series}` lost points: {} < {}",
            got.len(),
            points.len()
        );
        // The pre-shutdown observation is a prefix of the replayed one
        // (the drain itself can land one more scrape tick).
        assert_eq!(&got[..points.len()], &points[..], "series `{series}` diverged");
    }
    // Scraped history smooths like any other series (bucket = the real
    // scrape timestamp span so the grid stays under the server cap).
    let series = format!("asap_ingest_points.value{{{SELF_TAG}=1}}");
    let points = &restored[&series];
    let (t0, t1) = (points.first().unwrap().0, points.last().unwrap().0 + 1);
    let bucket = ((t1 - t0) / points.len() as i64).max(1);
    let smooth = query(addr, &format!("SMOOTH {series} {t0} {t1} {bucket}"));
    assert!(smooth.starts_with("OK 1\n"), "{smooth}");
    second.shutdown();
    std::fs::remove_dir_all(&wal_dir).ok();
}

/// `HEALTH` answers `OK healthy` while background passes succeed and
/// flips to `DEGRADED` with a quoted reason once one records an error.
#[test]
fn health_degrades_when_a_background_checkpoint_fails() {
    let chain_dir = std::env::temp_dir().join(format!("asap_obs_chain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&chain_dir);
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(2, 32)),
        ServerConfig {
            ingest: IngestConfig::default(),
            checkpoint: Some(CheckpointConfig {
                dir: chain_dir.clone(),
                schedule: Schedule::every(Duration::from_millis(25)),
                seed: 7,
                chain_depth: 4,
            }),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    ingest_doc(server.ingest_addr(), 2, 60);
    let addr = server.query_addr();

    wait_for_stats(addr, "a successful checkpoint", |s| {
        stat(s, "checkpoint.runs") >= 1
    });
    let health = query(addr, "HEALTH");
    assert!(health.starts_with("OK healthy"), "{health}");

    // Sabotage the chain directory, then feed fresh points: a pass with
    // an empty delta writes nothing, so the failure needs dirty series.
    std::fs::remove_dir_all(&chain_dir).expect("remove chain dir");
    std::fs::write(&chain_dir, b"not a directory").expect("block the path");
    ingest_doc_from(server.ingest_addr(), 2, 60, 30);
    wait_for_stats(addr, "a failed checkpoint", |s| stat(s, "checkpoint.errors") >= 1);
    let health = query(addr, "HEALTH");
    assert!(health.starts_with("DEGRADED "), "{health}");
    assert!(health.contains("checkpoint=\""), "{health}");

    server.shutdown();
    std::fs::remove_file(&chain_dir).ok();
}
