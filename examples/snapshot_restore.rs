//! Restart durability: snapshot a live TSDB, reload it, resume smoothing.
//!
//! Run with: `cargo run --release --example snapshot_restore`
//!
//! Monitoring backends restart — deploys, crashes, host moves. This
//! example exercises the durability path of the storage substrate:
//!
//! 1. ingest a day of noisy periodic telemetry and snapshot the engine to
//!    a single file (sealed Gorilla blocks, written compressed);
//! 2. "restart": load the snapshot into a fresh engine;
//! 3. verify the restored data byte-for-byte, resume ingestion where the
//!    old process stopped, and serve an ASAP-smoothed dashboard query
//!    spanning the restart boundary;
//! 4. report the metadata-only `summarize` fast path over the same range.

use asap::core::Asap;
use asap::tsdb::{
    load_snapshot, save_snapshot, smooth_query, DataPoint, RangeQuery, SeriesKey, Tsdb,
    TsdbConfig,
};

const STEP: i64 = 30; // seconds per sample

fn metric(i: i64) -> f64 {
    let phase = (i * STEP % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
    let noise = (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) % 100) as f64 / 12.5;
    55.0 + 20.0 * phase.sin() + noise
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("asap_snapshot_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("telemetry.snap");

    // 1. A day of 30-second samples, then snapshot.
    let day = 86_400 / STEP;
    let db = Tsdb::with_config(TsdbConfig {
        block_capacity: 512,
    });
    let key = SeriesKey::metric("cpu").with_tag("host", "db-1");
    for i in 0..day {
        db.write(&key, DataPoint::new(i * STEP, metric(i)))?;
    }
    save_snapshot(&db, &path)?;
    let size = std::fs::metadata(&path)?.len();
    println!(
        "snapshot: {} points -> {:.1} KiB on disk ({:.1} bits/point)",
        day,
        size as f64 / 1024.0,
        8.0 * size as f64 / day as f64
    );

    // 2. Restart: a fresh engine loads the snapshot.
    let restored = load_snapshot(&path, TsdbConfig::default())?;

    // 3a. Verify equality.
    let before = db.query(&key, RangeQuery::raw(0, day * STEP))?;
    let after = restored.query(&key, RangeQuery::raw(0, day * STEP))?;
    assert_eq!(before, after);
    println!("restore verified: {} points identical", after.len());

    // 3b. Resume ingestion for six more hours.
    let more = 6 * 3_600 / STEP;
    for i in day..day + more {
        restored.write(&key, DataPoint::new(i * STEP, metric(i)))?;
    }

    // 3c. Smooth a window spanning the restart boundary.
    let asap = Asap::builder().resolution(400).build();
    let frame = smooth_query(
        &restored,
        &key,
        &asap,
        0,
        (day + more) * STEP,
        5 * 60, // 5-minute buckets
    )?;
    println!(
        "ASAP over the spliced series: window = {} buckets ({} raw points), roughness {:.4}",
        frame.result.window, frame.result.window_raw_points, frame.result.roughness
    );

    // 4. Metadata fast path.
    if let Some(s) = restored.summarize(&key, 0, (day + more) * STEP)? {
        println!(
            "summarize (block metadata): count {}, min {:.2}, max {:.2}, mean {:.2}",
            s.count,
            s.min,
            s.max,
            s.mean()
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
