//! Sub-threshold alerting: catching systematic shifts a critical alarm
//! misses.
//!
//! Run with: `cargo run --release --example alerting`
//!
//! Reproduces the paper's electrical-utility story (§1): operators must
//! spot "systematic shifts of generator metrics ... even those that are
//! sub-threshold with respect to a critical alarm". A fixed threshold on
//! the raw feed cannot fire on a shift smaller than the noise band; the
//! same logic on ASAP's smoothed stream can, because smoothing collapses
//! the noise while the kurtosis constraint keeps the shift. This is the
//! alerting integration the paper lists as future work (§7).

use asap::core::alert::{DeviationAlerter, RawThresholdAlerter};
use asap::core::{StreamingAsap, StreamingConfig};

fn main() {
    // Generator output: 20k points of seasonal load + sensor noise, with a
    // sustained −2-unit shift starting at point 17 000. The raw noise band
    // is ±3 units, so the shift never crosses a ±4-unit critical alarm.
    let n = 20_000usize;
    let shift_at = 17_000usize;
    let telemetry: Vec<f64> = (0..n)
        .map(|i| {
            let seasonal = (std::f64::consts::TAU * i as f64 / 480.0).sin();
            let noise = 2.0 * ((((i as u64) * 2654435761) % 1000) as f64 / 1000.0 - 0.5);
            let shift = if i >= shift_at { -2.0 } else { 0.0 };
            50.0 + seasonal + noise + shift
        })
        .collect();

    // The legacy critical alarm: absolute bounds outside the noise band.
    let mut critical = RawThresholdAlerter::new(45.0, 55.0);

    // ASAP streaming at 200 px, refreshing every 500 points, with a
    // deviation alerter on the smoothed frames.
    let mut operator = StreamingAsap::new(StreamingConfig::new(n, 200, 500));
    let alerter = DeviationAlerter::new(1.0, 5);

    let mut first_alert = None;
    for (i, &v) in telemetry.iter().enumerate() {
        critical.push(v);
        if let Some(frame) = operator.push(v).expect("finite telemetry") {
            if let Some(alert) = alerter.check(&frame) {
                if first_alert.is_none() {
                    first_alert = Some((i, alert));
                }
            }
        }
    }

    println!("stream: {n} points; systematic -2.0 shift begins at point {shift_at}");
    println!("raw noise band: ±3 units; critical alarm bounds: [45, 55]\n");
    println!(
        "critical alarm crossings on the raw feed: {}",
        critical.crossings()
    );
    match first_alert {
        Some((at, alert)) => {
            println!(
                "ASAP deviation alert: fired at point {at} ({} points after onset)",
                at.saturating_sub(shift_at)
            );
            println!(
                "  direction {:?}, trailing run {} smoothed points, mean z {:.2}",
                alert.direction, alert.run_len, alert.mean_z
            );
        }
        None => println!("ASAP deviation alert: never fired (unexpected)"),
    }
    println!("\nThe raw alarm stays silent — the shift is sub-threshold by design.");
    println!("On the smoothed stream the same shift is a {:.0}σ event.", 2.0);
}
