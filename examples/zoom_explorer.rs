//! Interactive-zoom rendering with the multi-resolution pyramid.
//!
//! Run with: `cargo run --release --example zoom_explorer`
//!
//! Section 2 of the paper describes the zoom/scroll interaction: when the
//! visualized range changes, ASAP re-runs its window search because a
//! good window for one zoom level may over- or under-smooth another.
//! This example builds a [`asap::core::ZoomPyramid`] over two months of
//! taxi-style telemetry and renders a zoom sequence — full range, one
//! month, one week, one day — showing how the chosen window adapts and
//! how the pyramid keeps every interaction cheap.

use asap::core::{Asap, ZoomPyramid};
use asap::viz::sparkline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Taxi simulator: 30-minute buckets, daily + weekly seasonality,
    // one sustained Thanksgiving-week dip.
    let series = asap::data::taxi();
    let values = series.values();
    let n = values.len();
    let per_day = 48; // 30-minute buckets

    let pyramid = ZoomPyramid::build(values)?;
    println!(
        "pyramid over {} raw points: {} levels, {} stored points (< 2x raw)\n",
        n,
        pyramid.level_count(),
        pyramid.total_points()
    );

    let asap = Asap::builder().resolution(160).build();
    let zooms: &[(&str, std::ops::Range<usize>)] = &[
        ("75 days (full)", 0..n),
        ("30 days", n - 30 * per_day..n),
        ("7 days", n - 7 * per_day..n),
        ("1 day", n - per_day..n),
    ];

    for (label, range) in zooms {
        let result = pyramid.smooth_zoom(&asap, range.clone())?;
        let window_hours = result.window_raw_points as f64 * 0.5;
        println!(
            "zoom {label:>16}: window = {:>3} plotted pts = {:>6.1} h of data   ({} candidates searched)",
            result.window, window_hours, result.candidates_checked
        );
        println!("  {}", sparkline(&result.smoothed, 72));
    }

    println!("\nWider ranges smooth with wider windows (days), tight zooms");
    println!("barely smooth at all — exactly the §2 re-rendering behaviour.");
    Ok(())
}
