//! Full storage-to-screen pipeline: line protocol → TSDB → ASAP → chart.
//!
//! Run with: `cargo run --release --example tsdb_pipeline`
//!
//! The paper (§2) positions ASAP downstream of time-series databases "such
//! as InfluxDB". This example runs that whole deployment in-process:
//!
//! 1. simulate a fleet of hosts emitting InfluxDB line-protocol telemetry
//!    (a noisy daily-periodic request rate, with one host developing a
//!    sustained sub-threshold degradation);
//! 2. ingest it into the embedded Gorilla-compressed [`asap::tsdb::Tsdb`];
//! 3. tier it with a retention policy (raw TTL + hourly rollups);
//! 4. answer a dashboard request with [`asap::tsdb::smooth_query`] — a
//!    bucketed range query whose result ASAP smooths automatically;
//! 5. draw raw vs smoothed with the terminal renderer.

use asap::core::Asap;
use asap::tsdb::{
    ingest, smooth_query, Aggregator, Compactor, RangeQuery, RetentionPolicy, RollupLevel,
    SeriesKey, Tsdb,
};
use asap::viz::TerminalChart;

/// Seconds per simulated sample.
const STEP: i64 = 60;
/// Simulated days of telemetry.
const DAYS: i64 = 10;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Tsdb::new();
    let n_points = DAYS * 86_400 / STEP;

    // 1+2. Emit and ingest line-protocol batches, one host at a time.
    for host in ["web-1", "web-2", "web-3"] {
        let mut doc = String::with_capacity(64 * n_points as usize);
        for i in 0..n_points {
            let ts = i * STEP;
            let day_phase = (ts % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
            let mut rate = 420.0 + 160.0 * day_phase.sin();
            // Deterministic per-host jitter (hash-noise, ±40).
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(host.len() as u64)
                >> 33;
            rate += ((h % 800) as f64 / 10.0) - 40.0;
            // web-3 degrades quietly over the final three days.
            if host == "web-3" && ts > 7 * 86_400 {
                rate -= 60.0 * ((ts - 7 * 86_400) as f64 / (3.0 * 86_400.0));
            }
            doc.push_str(&format!("requests,host={host} rate={rate:.2} {ts}\n"));
        }
        let written = ingest(&db, &doc, 0)?;
        println!("ingested {written} points for {host}");
    }
    db.flush()?;
    for s in db.stats() {
        println!(
            "  {}: {} points in {} blocks, {:.1} KiB compressed ({:.1} bits/point)",
            s.key,
            s.points,
            s.blocks,
            s.compressed_bytes as f64 / 1024.0,
            8.0 * s.compressed_bytes as f64 / s.points as f64
        );
    }

    // 3. Dashboard request: the full 10 days of web-3 at 5-minute buckets,
    // smoothed by ASAP for a small dashboard panel.
    let key = SeriesKey::metric("requests.rate").with_tag("host", "web-3");
    let (t0, t1) = (0, DAYS * 86_400);
    let asap = Asap::builder().resolution(240).build();
    let frame = smooth_query(&db, &key, &asap, t0, t1, 300)?;
    println!(
        "\nASAP window: {} buckets ({} minutes of telemetry per plotted point)",
        frame.result.window,
        frame.result.window_raw_points * 5
    );

    // 4. Render raw vs smoothed.
    let raw = db.query(&key, RangeQuery::bucketed(t0, t1, 300))?;
    let raw_vals: Vec<f64> = raw.iter().map(|p| p.value).collect();
    let chart = TerminalChart::new(72, 9);
    println!("\nraw 5-minute buckets (web-3, 10 days):");
    print!("{}", chart.clone().title("raw").render(&[&raw_vals])?);
    println!("\nASAP-smoothed (same interval):");
    print!(
        "{}",
        chart.title("asap").render(&[&frame.result.smoothed])?
    );
    let raw_rough = asap::timeseries::roughness(&frame.result.aggregated)?;
    println!(
        "\nroughness: {:.3} raw -> {:.3} smoothed; the day-8 onset of the",
        raw_rough, frame.result.roughness
    );
    // 5. Ops tier: age out raw data (7-day TTL), keep hourly means forever.
    let mut compactor = Compactor::new(RetentionPolicy {
        raw_ttl: Some(7 * 86_400),
        rollups: vec![RollupLevel {
            bucket: 3_600,
            aggregator: Aggregator::Mean,
            ttl: None,
        }],
    })?;
    let report = compactor.run(&db, DAYS * 86_400)?;
    println!(
        "\ncompaction: {} rollup points materialized, {} raw points evicted",
        report.rolled_up, report.raw_evicted
    );

    println!(
        "history beyond the raw TTL remains queryable as hourly rollups"
    );
    Ok(())
}
