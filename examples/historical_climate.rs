//! Historical analysis: 248 years of monthly temperature on one screen.
//!
//! Run with: `cargo run --release --example historical_climate`
//!
//! Reproduces the paper's second case study (§2, Figure 3): seasonal
//! fluctuations obscure the 20th-century warming trend in the raw monthly
//! series. The example contrasts three renderings — raw, ASAP, and the
//! quarter-length oversmoothing baseline — and writes each to CSV so they
//! can be plotted with any external tool.

use asap::baselines::oversmooth::oversmooth;
use asap::data::csv::write_csv;
use asap::prelude::*;

fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|c| {
            let i = ((c as f64) * step) as usize;
            BARS[(((values[i] - min) / span * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn main() {
    let temp = asap::data::temperature();
    println!(
        "dataset: {} — {} monthly readings, {:.0} years\n",
        temp.name(),
        temp.len(),
        temp.duration_secs() / (365.25 * 86_400.0)
    );

    // ASAP at laptop resolution.
    let result = Asap::builder()
        .resolution(1200)
        .build()
        .smooth(temp.values())
        .expect("temperature series is well-formed");
    let months = result.window_raw_points;
    println!(
        "ASAP window: {} months ≈ {:.1} years (the paper's Figure 3 uses a 23-year average)",
        months,
        months as f64 / 12.0
    );

    let over = oversmooth(temp.values()).expect("series long enough");

    println!("\nraw (seasonal noise):    {}", sparkline(temp.values(), 76));
    println!("ASAP (trend + texture):  {}", sparkline(&result.smoothed, 76));
    println!("oversmoothed (trend):    {}", sparkline(&over, 76));

    // Quantify what each rendering preserves.
    println!("\n{:<14}{:>12}{:>12}", "rendering", "roughness", "kurtosis");
    for (name, series) in [
        ("raw", temp.values().to_vec()),
        ("ASAP", result.smoothed.clone()),
        ("oversmoothed", over.clone()),
    ] {
        println!(
            "{:<14}{:>12.4}{:>12.2}",
            name,
            roughness(&series).unwrap(),
            kurtosis(&series).unwrap_or(f64::NAN)
        );
    }

    // Export for external plotting.
    let dir = std::env::temp_dir();
    for (stem, values, period) in [
        ("england_temp_raw", temp.values().to_vec(), temp.period_secs()),
        (
            "england_temp_asap",
            result.smoothed.clone(),
            temp.period_secs() * result.pixel_ratio as f64,
        ),
    ] {
        let path = dir.join(format!("{stem}.csv"));
        let ts = TimeSeries::new(stem, values, period);
        write_csv(&path, &ts).expect("tmp dir is writable");
        println!("wrote {}", path.display());
    }
}
