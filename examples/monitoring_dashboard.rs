//! Streaming dashboard: ASAP as a continuous operator over live telemetry.
//!
//! Run with: `cargo run --release --example monitoring_dashboard`
//!
//! Reproduces the paper's application-monitoring case study (§2, Figure 2):
//! an on-call operator watches ten days of cluster CPU telemetry on a
//! smartphone. The stream is fed point-by-point through
//! [`asap::core::StreamingAsap`]; every refresh emits a frame smoothed
//! with a freshly validated window. The terminal usage spike — invisible
//! in the raw 5-minute feed — dominates the final smoothed frames.

use asap::core::{StreamingAsap, StreamingConfig};

fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|c| {
            let i = ((c as f64) * step) as usize;
            BARS[(((values[i] - min) / span * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn main() {
    // Ten days of 5-minute CPU utilization with a terminal usage spike.
    let telemetry = asap::data::cpu_cluster();
    let n = telemetry.len();
    println!(
        "streaming {} points of {} (5-minute cluster CPU averages)...\n",
        n,
        telemetry.name()
    );

    // Visualize the full 10-day window at 360 px (a phone-sized chart),
    // refreshing the dashboard once per simulated day (288 points).
    let mut operator = StreamingAsap::new(StreamingConfig::new(n, 360, 288));

    for (i, &cpu) in telemetry.values().iter().enumerate() {
        if let Some(frame) = operator.push(cpu).expect("stream is well-formed") {
            let day = (i + 1) as f64 / 288.0;
            println!(
                "day {day:>4.1} | window {:>3} agg pts | {} ",
                frame.outcome.window,
                sparkline(&frame.smoothed, 64)
            );
        }
    }

    let final_frame = operator.refresh().expect("final refresh");
    println!(
        "\nfinal frame: window = {} aggregated points, {} searches run for {} points",
        final_frame.outcome.window,
        operator.searches_run(),
        operator.points_ingested()
    );
    println!(
        "on-demand refresh saved {}x search invocations vs per-point updates",
        operator.points_ingested() / operator.searches_run().max(1)
    );
    println!("\nThe rising tail (the incident) stands out in the last frames; the raw");
    println!("feed hides it behind minute-scale fluctuation.");
}
