//! The served pipeline end to end: TCP ingest → background compaction →
//! TCP smoothing queries.
//!
//! Run with: `cargo run --release --example server`
//!
//! Starts an [`asap::server::Server`] on ephemeral loopback ports,
//! streams jittered fleet telemetry to the ingest port from several
//! concurrent "agent" connections, polls the ops endpoints (`HEALTH`,
//! `STATS`) while data flows, asks for an ASAP-smoothed frame over the
//! query protocol (`SMOOTH`), and shuts down gracefully with a final
//! snapshot — the shape the paper's §2 deployment story describes, as
//! an actual network service.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use asap::server::{CompactionClock, CompactionConfig, Server, ServerConfig};
use asap::tsdb::{
    Aggregator, IngestConfig, RetentionPolicy, RollupLevel, Schedule, ShardedConfig, ShardedDb,
};

/// Simulated agents (one TCP connection each).
const AGENTS: usize = 3;
/// Samples per agent.
const SAMPLES: i64 = 3_000;
/// Worst-case delivery lateness, in timestamp units.
const LATENESS: i64 = 50;

/// One agent's jittered telemetry: bounded out-of-order line protocol.
fn agent_telemetry(agent: usize) -> String {
    let mut records: Vec<(i64, String)> = (0..SAMPLES)
        .map(|i| {
            let t = i * 10;
            let rate = 120.0
                + 40.0 * (std::f64::consts::TAU * t as f64 / 9_600.0).sin()
                + 15.0 * (((i * 37 + agent as i64 * 11) % 97) as f64 / 97.0 - 0.5);
            let arrival = t + (i * 13 + agent as i64 * 7) % LATENESS;
            (arrival, format!("req,host=h{agent} rate={rate:.3} {t}"))
        })
        .collect();
    records.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    records
        .into_iter()
        .map(|(_, line)| line + "\n")
        .collect()
}

/// Sends one command and reads the full response (line, or `OK…END`).
fn query(addr: SocketAddr, command: &str) -> std::io::Result<String> {
    let conn = TcpStream::connect(addr)?;
    (&conn).write_all(format!("{command}\n").as_bytes())?;
    let mut reader = BufReader::new(&conn);
    let mut response = String::new();
    reader.read_line(&mut response)?;
    let multi = response
        .strip_prefix("OK ")
        .is_some_and(|rest| rest.trim() == "stats" || rest.trim().parse::<usize>().is_ok());
    while multi && !response.ends_with("END\n") {
        if reader.read_line(&mut response)? == 0 {
            break;
        }
    }
    Ok(response)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let snapshot = std::env::temp_dir().join(format!("asap_server_{}.snap", std::process::id()));
    let server = Server::start(
        ShardedDb::with_config(ShardedConfig::new(4, 512)),
        ServerConfig {
            ingest: IngestConfig {
                lateness: Some(LATENESS),
                ..IngestConfig::default()
            },
            compaction: Some(CompactionConfig {
                policy: RetentionPolicy {
                    raw_ttl: None,
                    rollups: vec![RollupLevel {
                        bucket: 600,
                        aggregator: Aggregator::Mean,
                        ttl: None,
                    }],
                },
                schedule: Schedule::every(Duration::from_millis(100))
                    .with_jitter(Duration::from_millis(25)),
                seed: 7,
                clock: CompactionClock::DataWatermark,
            }),
            final_snapshot: Some(snapshot.clone()),
            ..ServerConfig::default()
        },
    )?;
    println!(
        "server up: ingest {} | query {}",
        server.ingest_addr(),
        server.query_addr()
    );

    // ── agents stream telemetry concurrently over TCP ──────────────────
    let ingest_addr = server.ingest_addr();
    let agents: Vec<_> = (0..AGENTS)
        .map(|agent| {
            std::thread::spawn(move || -> std::io::Result<String> {
                let mut conn = TcpStream::connect(ingest_addr)?;
                for piece in agent_telemetry(agent).as_bytes().chunks(1_400) {
                    conn.write_all(piece)?;
                }
                conn.shutdown(Shutdown::Write)?;
                let mut report = String::new();
                conn.read_to_string(&mut report)?;
                Ok(report.trim().to_owned())
            })
        })
        .collect();
    println!("{}", query(server.query_addr(), "HEALTH")?.trim_end());
    for (agent, handle) in agents.into_iter().enumerate() {
        // The server answers each drained connection with the stable
        // one-line IngestReport format.
        println!("agent h{agent} report: {}", handle.join().unwrap()?);
    }

    // ── ops: wait for the scheduler, then inspect the counters ─────────
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = query(server.query_addr(), "STATS")?;
        let compacted = stats
            .lines()
            .any(|l| l.strip_prefix("compaction.runs ").is_some_and(|v| v.trim() != "0"));
        if compacted || std::time::Instant::now() > deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    for line in stats.lines() {
        if line.starts_with("ingest.points")
            || line.starts_with("compaction.")
            || line.starts_with("store.")
        {
            println!("stats: {line}");
        }
    }

    // ── a dashboard asks for a smoothed window over the wire ───────────
    // Line protocol flattens `req rate=…` into the series metric
    // `req.rate`. The selector also matches the `__rollup__`-tagged
    // series the scheduler materialized — both come back as frames.
    let span = SAMPLES * 10;
    let response = query(
        server.query_addr(),
        &format!("SMOOTH req.rate{{host=h0}} 0 {span} 10 200"),
    )?;
    let headers: Vec<&str> = response
        .lines()
        .filter(|l| l.starts_with("SERIES "))
        .collect();
    assert!(
        headers.iter().any(|h| h.starts_with("SERIES req.rate{host=h0}")),
        "no base-series frame: {response}"
    );
    for header in headers {
        println!("smooth h0: {header}");
    }

    // ── graceful shutdown: drain, final snapshot, report ───────────────
    let report = server.shutdown();
    println!(
        "drained: {} points over {} connections; compaction runs={} rolled_up={}; \
         snapshot at {}",
        report.ingest.points,
        report.ingest.connections,
        report.compaction.runs,
        report.compaction.rolled_up,
        snapshot.display()
    );
    assert_eq!(report.ingest.points as i64, AGENTS as i64 * SAMPLES);
    assert!(report.final_snapshot_error.is_none());
    std::fs::remove_file(&snapshot).ok();
    Ok(())
}
