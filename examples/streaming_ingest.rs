//! Streaming out-of-order ingest: byte stream → reorder stage → ASAP.
//!
//! Run with: `cargo run --release --example streaming_ingest`
//!
//! Real telemetry arrives as an unbounded, mildly out-of-order byte
//! stream — agents retry, UDP reorders, scrapes jitter. This example
//! runs the streaming front-end end to end, twice:
//!
//! 1. **File drain**: write jittered line-protocol telemetry to a real
//!    file, then drain it through [`asap::tsdb::ShardedDb::ingest_reader`]
//!    — the chunker reassembles lines across read-buffer boundaries and
//!    the per-shard reorder stage repairs the disorder;
//! 2. **Live handle**: feed the same stream to a long-running
//!    [`asap::tsdb::StreamIngestor`] in small "network packets", polling
//!    its live progress between feeds — the shape a socket listener
//!    plugs into — then `finish()` to flush the reorder buffers;
//!
//! and finally smooths a series straight out of the streamed store with
//! [`asap::tsdb::smooth_query`] to close the paper's pipeline.

use asap::core::Asap;
use asap::tsdb::{
    smooth_query, IngestConfig, RangeQuery, SeriesKey, ShardedConfig, ShardedDb,
};
use asap::viz::TerminalChart;

/// Simulated hosts.
const HOSTS: usize = 4;
/// Samples per host.
const SAMPLES: i64 = 4_000;
/// Seconds per sample slot.
const STEP: i64 = 10;
/// Worst-case delivery lateness, in seconds.
const LATENESS: i64 = 5 * STEP;

/// Renders the fleet's telemetry with bounded delivery jitter: each
/// record is displaced from its nominal slot by a deterministic
/// pseudo-jitter strictly below [`LATENESS`].
fn jittered_telemetry() -> String {
    let mut records: Vec<(i64, String)> = Vec::new();
    for i in 0..SAMPLES {
        let t = i * STEP;
        for h in 0..HOSTS {
            let rate = 120.0
                + 40.0 * (std::f64::consts::TAU * t as f64 / 86_400.0).sin()
                + 15.0 * (((i * 37 + h as i64 * 11) % 97) as f64 / 97.0 - 0.5);
            let arrival = t + (i * 13 + h as i64 * 7) % LATENESS;
            records.push((arrival, format!("req,host=h{h} rate={rate:.3} {t}")));
        }
    }
    records.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    let mut doc = String::new();
    for (_, line) in records {
        doc.push_str(&line);
        doc.push('\n');
    }
    doc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = jittered_telemetry();
    let config = IngestConfig {
        lateness: Some(LATENESS),
        ..IngestConfig::default()
    };

    // ── 1. Drain a real file through the streaming pipeline ────────────
    let path = std::env::temp_dir().join(format!("asap_stream_{}.lp", std::process::id()));
    std::fs::write(&path, doc.as_bytes())?;
    let db = ShardedDb::with_config(ShardedConfig::new(4, 512));
    let report = db.ingest_reader(std::fs::File::open(&path)?, 0, &config)?;
    std::fs::remove_file(&path).ok();
    // IngestReport renders as the stable one-line ops format the server
    // also logs — parseable `key=value` tokens.
    println!("file drain:  {report}");
    assert!(report.is_clean(), "jitter stayed within lateness: {report:?}");
    assert_eq!(report.points, (HOSTS as i64 * SAMPLES) as usize);

    // ── 2. The same stream through a long-running live handle ──────────
    let live = ShardedDb::with_config(ShardedConfig::new(4, 512));
    let mut ingestor = live.stream_ingestor(0, config)?;
    let packet = 1_400; // one "network packet" worth of bytes
    for (i, piece) in doc.as_bytes().chunks(packet).enumerate() {
        ingestor.feed(piece);
        if i % 64 == 0 {
            // StreamProgress shares the report's one-line format, plus
            // the two live gauges (in-flight chunks, pending reorder).
            println!("live handle: packet {i:>4}: {}", ingestor.progress());
        }
    }
    let live_report = ingestor.finish();
    println!("live handle: finished -> {live_report}");
    assert_eq!(live_report, report, "feed-by-packet ≡ file drain");

    // ── 3. Smooth a dashboard window straight out of the stream ────────
    let key = SeriesKey::metric("req.rate").with_tag("host", "h0");
    let span = SAMPLES * STEP;
    let raw = db.query(&key, RangeQuery::raw(0, span))?;
    let asap = Asap::builder().resolution(200).build();
    let frame = smooth_query(&db, &key, &asap, 0, span, STEP)?;
    println!(
        "\nsmoothed h0: window {} over {} buckets (raw {} pts)",
        frame.result.window,
        frame.result.smoothed.len(),
        raw.len()
    );
    let chart = TerminalChart::new(72, 12);
    print!(
        "{}",
        chart
            .title("req.rate{host=h0}, streamed + smoothed")
            .render(&[&frame.result.smoothed])?
    );
    Ok(())
}
