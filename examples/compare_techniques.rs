//! Technique shoot-out: ASAP vs the §5.1 baselines on one dataset.
//!
//! Run with: `cargo run --release --example compare_techniques [dataset]`
//!
//! Applies every user-study visualization technique (Original, ASAP, M4,
//! Visvalingam–Whyatt, PAA800, PAA100, Oversmooth) to a chosen evaluation
//! dataset and prints each one's roughness, pixel error vs the raw
//! rendering, and viewer-side distraction — the trade-off triangle of §6:
//! pixel-faithful techniques (M4) keep the noise; ASAP trades pixel
//! fidelity for attention.

use asap::eval::{render, technique_pixel_error, Technique};
use asap::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Taxi".to_string());
    let info = asap::data::catalog::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name:?}; available:");
        for d in asap::data::all_datasets() {
            eprintln!("  {}", d.name);
        }
        std::process::exit(1);
    });
    let series = info.generate();
    println!(
        "dataset: {} — {} points ({})\n",
        info.name, info.n_points, info.description
    );

    const W: usize = 800;
    const H: usize = 200;

    println!(
        "{:<12}{:>12}{:>14}{:>14}",
        "technique", "roughness", "pixel error", "distraction"
    );
    for t in Technique::figure6() {
        let rendering = render(t, series.values(), W).expect("renderable");
        let rough = roughness(&rendering.level).unwrap_or(0.0);
        let error = technique_pixel_error(t, series.values(), W, H).expect("renderable");
        println!(
            "{:<12}{:>12.4}{:>14.3}{:>14.3}",
            t.name(),
            rough,
            error,
            rendering.distraction()
        );
    }

    println!("\nReading the table: M4 minimizes pixel error but keeps all the");
    println!("distraction; ASAP accepts a large pixel error to minimize the");
    println!("distraction while preserving the anomaly (kurtosis constraint).");
}
