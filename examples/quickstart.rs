//! Quickstart: smooth a noisy periodic series for an 800-pixel chart.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Reproduces the paper's running example (Figure 1): the NYC-taxi-style
//! series has strong daily periodicity that hides a week-long Thanksgiving
//! dip; ASAP picks a window that removes the periodic noise and makes the
//! dip obvious.

use asap::prelude::*;

/// Renders a series as a one-line Unicode sparkline.
fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(1e-12);
    let step = (values.len() as f64 / width as f64).max(1.0);
    (0..width.min(values.len()))
        .map(|c| {
            let i = ((c as f64) * step) as usize;
            let level = ((values[i] - min) / span * 7.0).round() as usize;
            BARS[level.min(7)]
        })
        .collect()
}

fn main() {
    // The Taxi simulator: 3 600 half-hour buckets, daily + weekly
    // seasonality, and a sustained dip during Thanksgiving week.
    let series = asap::data::taxi();
    println!("dataset: {} ({} points over {:.0} days)", series.name(), series.len(),
        series.duration_secs() / 86_400.0);

    let result = Asap::builder()
        .resolution(800) // the chart is 800 px wide
        .build()
        .smooth(series.values())
        .expect("taxi series is well-formed");

    let hours = result.window_raw_points as f64 * series.period_secs() / 3_600.0;
    println!(
        "chosen window: {} aggregated points = {} raw points ≈ {:.0} hours",
        result.window, result.window_raw_points, hours
    );
    println!(
        "candidates evaluated: {} (exhaustive would evaluate ~{})",
        result.candidates_checked,
        result.aggregated.len() / 10
    );

    let raw_roughness = roughness(series.values()).unwrap();
    println!("roughness: {raw_roughness:.3} raw -> {:.3} smoothed", result.roughness);
    println!(
        "kurtosis:  {:.2} raw -> {:.2} smoothed (constraint: must not drop)",
        kurtosis(series.values()).unwrap(),
        result.kurtosis
    );

    println!("\nraw:      {}", sparkline(series.values(), 80));
    println!("ASAP:     {}", sparkline(&result.smoothed, 80));
    println!("\nThe dip near the right end (Thanksgiving week) is buried in the raw");
    println!("plot's daily oscillation and obvious in the smoothed one.");
}
